"""Failure-reproduction study (Sec. 5.2).

"Since TSOtool is often able to trigger and detect problems in
system-level environments using relatively short test programs, a
TSOtool test failure on hardware has a good probability of being
reproduced in the simulation environment.  This is critical for porting
the test to simulation environments, where debugging is easier but
speeds are much lower than on physical hardware."

The reproduction analogue: take a test program that *failed* on a buggy
machine, and re-run the *same program* under fresh random interleavings
(the "different environment" — timing is the only thing that changes).
The study measures the probability that the failure manifests again, as
a function of test length and bug mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Type

from repro.core.api import check
from repro.core.policy import TSO, MemoryModel
from repro.generator.config import GeneratorConfig
from repro.generator.generator import generate_program
from repro.sim.faults import Fault
from repro.sim.machine import MachineConfig, TsoMachine


@dataclass
class ReproductionPoint:
    """Reproduction statistics for one (mechanism, test length) cell."""

    mechanism: str
    ops_per_proc: int
    failures_found: int
    reruns_per_failure: int
    reproduction_rate: float
    search_tests: int

    def row(self) -> str:
        """Fixed-width text row for the harness output."""
        return (
            f"{self.mechanism:28s} ops={self.ops_per_proc:<5d} "
            f"failures={self.failures_found:<3d} "
            f"repro_rate={self.reproduction_rate:6.1%} "
            f"(over {self.reruns_per_failure} reruns each)"
        )


def reproduction_study(
    mechanism: Type[Fault],
    rate: float,
    ops_per_proc: int,
    failures: int = 8,
    reruns: int = 10,
    nprocs: int = 4,
    shared_words: int = 6,
    model: MemoryModel = TSO,
    search_budget: int = 400,
    base_seed: int = 0,
) -> Optional[ReproductionPoint]:
    """Measure how often a failing test's failure reproduces on re-run.

    Finds up to ``failures`` (program, seed) pairs whose first run fails
    the check with ``mechanism`` active, then re-runs each program under
    ``reruns`` fresh machine seeds (same program, same fault, different
    interleavings) and reports the mean fraction of re-runs that fail
    again.  Returns ``None`` if no failure is found within the budget.
    """
    config = GeneratorConfig(
        nprocs=nprocs, ops_per_proc=ops_per_proc, shared_words=shared_words
    )
    rates: List[float] = []
    searched = 0
    seed = base_seed
    while len(rates) < failures and searched < search_budget:
        seed += 1
        searched += 1
        program = generate_program(config, seed=seed)
        machine = TsoMachine(program, seed=seed, faults=[mechanism(rate=rate)])
        if check(program, machine.run(), model=model).ok:
            continue
        reproduced = 0
        for rerun in range(reruns):
            rerun_seed = 1_000_000 + seed * 131 + rerun
            again = TsoMachine(
                program, seed=rerun_seed, faults=[mechanism(rate=rate)]
            )
            if not check(program, again.run(), model=model).ok:
                reproduced += 1
        rates.append(reproduced / reruns)
    if not rates:
        return None
    return ReproductionPoint(
        mechanism=mechanism.__name__,
        ops_per_proc=ops_per_proc,
        failures_found=len(rates),
        reruns_per_failure=reruns,
        reproduction_rate=sum(rates) / len(rates),
        search_tests=searched,
    )


def sweep_reproduction(
    cases: Sequence[tuple],
    ops_points: Sequence[int],
    failures: int = 8,
    reruns: int = 10,
) -> List[ReproductionPoint]:
    """Run the study over (mechanism, rate) cases x test lengths."""
    points = []
    for mechanism, rate in cases:
        for ops in ops_points:
            point = reproduction_study(
                mechanism, rate, ops, failures=failures, reruns=reruns
            )
            if point is not None:
                points.append(point)
    return points
