"""Test-coverage reporting (Sec. 3.1).

"Users can improve the quality of testcases generated using tools which
report test coverage."  This module computes, from one run, the
quantities that matter for memory-system stress — how racy the test
actually was, which mechanisms it touched, how hard it pushed the
queues — so users can tune generator knobs toward the corners they care
about (and so the pattern ablation has something objective to point at).

Two layers:

* trace-derived metrics (:class:`CoverageReport`), computable from any
  ``(program, execution)`` pair — including traces re-loaded from the
  standalone text interface;
* machine-derived metrics, merged in when the run's
  :class:`~repro.sim.machine.TsoMachine` is available (forwarding and
  cache-hit counts, store-buffer high-water marks).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.model.ops import (
    WORD_SIZE,
    IBlockLoad,
    IBlockStore,
    IBranch,
    ICas,
    IFlushCache,
    IFlushPipe,
    IInterrupt,
    ILoad,
    IMembar,
    INonFaultingLoad,
    IPrefetch,
    IStore,
    ISwap,
)
from repro.model.program import Program
from repro.model.trace import DynRecord, Execution
from repro.sim.machine import TsoMachine


def _instr_kind(rec: DynRecord) -> str:
    instr = rec.instr
    if isinstance(instr, ICas):
        return "cas_ok" if rec.cas_ok else "cas_fail"
    for cls, name in (
        (ILoad, "load"), (IStore, "store"), (ISwap, "swap"),
        (IMembar, "membar"), (IBlockLoad, "block_load"),
        (IBlockStore, "block_store"), (INonFaultingLoad, "nonfaulting_load"),
        (IPrefetch, "prefetch"), (IFlushCache, "flush_cache"),
        (IFlushPipe, "flush_pipe"), (IBranch, "branch"),
        (IInterrupt, "interrupt"),
    ):
        if isinstance(instr, cls):
            return name
    return "other"


@dataclass
class CoverageReport:
    """What one test run actually exercised.

    Attributes:
        instr_counts: executed dynamic records by kind (CAS split into
            successful and failed — a failed CAS means a racing store won
            the compare window, a coverage event in its own right).
        words_touched: shared words with at least one access.
        write_shared_words: words stored to by two or more processors —
            the core of "intense sharing".
        race_pairs: distinct (writer CPU, reader/writer CPU, word)
            conflicts: pairs of processors that actually collided on a
            word with at least one side writing.
        sharing_histogram: word -> number of distinct CPUs accessing it.
        branch_taken / branch_not_taken: resolved branch directions.
        atomic_contended_words: words targeted by atomics from more than
            one CPU.
        machine: counters merged from :class:`~repro.sim.machine.MachineStats`
            when available (empty otherwise).
    """

    instr_counts: Dict[str, int] = field(default_factory=dict)
    words_touched: int = 0
    write_shared_words: int = 0
    race_pairs: int = 0
    sharing_histogram: Dict[int, int] = field(default_factory=dict)
    branch_taken: int = 0
    branch_not_taken: int = 0
    atomic_contended_words: int = 0
    machine: Dict[str, object] = field(default_factory=dict)

    @property
    def total_memory_ops(self) -> int:
        """Dynamic records carrying data (loads/stores/atomics/blocks)."""
        keys = (
            "load", "store", "swap", "cas_ok", "cas_fail",
            "block_load", "block_store", "nonfaulting_load",
        )
        return sum(self.instr_counts.get(k, 0) for k in keys)

    def render(self) -> str:
        """Multi-line human-readable report."""
        lines = ["coverage report"]
        lines.append("  instruction mix (executed):")
        for kind in sorted(self.instr_counts):
            lines.append(f"    {kind:18s} {self.instr_counts[kind]}")
        lines.append(f"  shared words touched      : {self.words_touched}")
        lines.append(f"  write-shared words        : {self.write_shared_words}")
        lines.append(f"  racing processor pairs    : {self.race_pairs}")
        lines.append(f"  atomic-contended words    : {self.atomic_contended_words}")
        total_branches = self.branch_taken + self.branch_not_taken
        if total_branches:
            lines.append(
                f"  branch directions         : {self.branch_taken} taken / "
                f"{self.branch_not_taken} not taken"
            )
        for key in sorted(self.machine):
            lines.append(f"  machine.{key:17s} : {self.machine[key]}")
        return "\n".join(lines)


def measure_coverage(
    program: Program,
    execution: Execution,
    machine: Optional[TsoMachine] = None,
) -> CoverageReport:
    """Compute a :class:`CoverageReport` for one run."""
    report = CoverageReport()
    writers: Dict[int, Set[int]] = {}   # word -> CPUs that stored to it
    accessors: Dict[int, Set[int]] = {} # word -> CPUs that touched it
    atomics: Dict[int, Set[int]] = {}   # word -> CPUs doing atomics

    for pid, proc in enumerate(execution.records):
        for rec in proc:
            kind = _instr_kind(rec)
            report.instr_counts[kind] = report.instr_counts.get(kind, 0) + 1
            if isinstance(rec.instr, IBranch):
                if rec.taken:
                    report.branch_taken += 1
                else:
                    report.branch_not_taken += 1
            addr = getattr(rec.instr, "addr", None)
            if addr is None:
                continue
            nwords = rec.instr.words()
            for w in range(nwords):
                word = addr + w * WORD_SIZE
                accessors.setdefault(word, set()).add(pid)
                if rec.stored is not None:
                    writers.setdefault(word, set()).add(pid)
                if isinstance(rec.instr, (ISwap, ICas)):
                    atomics.setdefault(word, set()).add(pid)

    report.words_touched = len(accessors)
    report.write_shared_words = sum(1 for cpus in writers.values() if len(cpus) > 1)
    report.atomic_contended_words = sum(
        1 for cpus in atomics.values() if len(cpus) > 1
    )
    report.sharing_histogram = {
        word: len(cpus) for word, cpus in accessors.items()
    }

    pairs: Set[Tuple[int, int, int]] = set()
    for word, writer_set in writers.items():
        for writer in writer_set:
            for other in accessors.get(word, ()):  # readers and writers
                if other != writer:
                    pairs.add((min(writer, other), max(writer, other), word))
    report.race_pairs = len(pairs)

    if machine is not None:
        stats = machine.stats
        report.machine = {
            "forwards": stats.forwards,
            "cache_hits": stats.cache_hits,
            "memory_reads": stats.memory_reads,
            "commits": stats.commits,
            "invalidations": stats.invalidations,
            "buffer_highwater": list(stats.buffer_highwater),
            "ipis_delivered": stats.ipis_delivered,
            "writebacks": stats.writebacks,
            "snoop_hits": stats.snoop_hits,
            "sched_policy": machine.policy.name,
            "sched_decisions": stats.sched_decisions,
        }
    return report
