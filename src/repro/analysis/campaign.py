"""Randomized bug-hunting campaigns — the harness behind Tables 1 and 2.

For every seeded bug of a :class:`~repro.sim.cpus.CpuConfig`, the
campaign runs freshly generated racy tests on a machine with exactly that
fault active until the bug is *found* or the test budget runs out.
"Found" depends on the bug class, mirroring how the paper's users triaged
failures:

* **architecture / design** — the TSOtool analysis of the observed run
  fails: the machine genuinely violated the memory model.
* **monitor** — a runtime-checker alarm fired on a run whose TSOtool
  analysis passes: the design was fine, the checker is buggy.
* **environment** — the observed trace fails analysis but the machine's
  true trace passes: the observation path corrupted the results.

The campaign then reports detected-bug counts grouped by class (Table 1)
and by functional unit (Table 2).
"""

from __future__ import annotations

import os
import zlib
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro import telemetry
from repro.analysis.pool import ProgressFn, run_tasks
from repro.analysis.replay import bug_spec_from_meta, hunt_trace_meta
from repro.core.api import DEFAULT_ENGINE, check
from repro.core.context import CheckContext
from repro.core.policy import TSO, MemoryModel
from repro.core.stream import DEFAULT_WINDOW, stream_check_machine
from repro.core.result import PoolStats
from repro.generator.config import GeneratorConfig, InstructionMix
from repro.generator.generator import generate_program
from repro.sched.spec import SchedSpec, make_policy
from repro.sched.trace import RecordingPolicy
from repro.sim.cpus import CPU_CONFIGS, BugSpec, CpuConfig
from repro.sim.faults import BugClass, FuncUnit
from repro.sim.machine import MachineConfig, TsoMachine


@dataclass(frozen=True)
class CampaignConfig:
    """Campaign-wide knobs.

    Attributes:
        tests_per_bug: test budget per seeded bug.
        generator: base test-generator configuration; the campaign's
            tests are intentionally short with intense sharing ("a
            relatively short test with intense sharing", Sec. 3.1).
        machine: machine tunables for every run.
        model: memory model checked against.
        seed: campaign master seed (everything derives from it).
        sched: schedule-exploration strategy for every run
            (:class:`~repro.sched.spec.SchedSpec`).  The spec — not a
            live policy — is what gets pickled to pool workers; each
            attempt instantiates a fresh policy from it, so parallel and
            sequential campaigns stay hunt-for-hunt identical.
        engine: checker engine used to triage every run (any key of
            :data:`repro.core.api.ENGINES`); the engines agree on
            verdicts, so this only changes triage speed.
        batch: hunts dispatched per pool task (``>= 1``).  Batching
            amortizes the per-task fixed costs — task pickling and pipe
            round-trips, worker telemetry flushes — and lets the hunts
            of a batch share warm state (a reset :class:`TsoMachine`,
            reused checker buffers) via :class:`HuntScratch`.  Every
            hunt's seed stream is derived from (campaign seed, cpu, bug
            index) alone, so results are hunt-for-hunt identical for
            any batch size.
        pipeline: overlap checking with simulation per attempt using
            the streaming checker (architecture/design hunts only):
            the run is checked as records retire and a violating seed
            aborts at the closing record, then that one attempt is
            re-run conventionally for the canonical verdict — hunts
            stay identical to the non-pipelined path.  Monitor and
            environment hunts always triage conventionally (their
            verdicts consult post-run machine state, and the observer
            hook changes where observation faults draw their RNG).
    """

    tests_per_bug: int = 10
    generator: GeneratorConfig = field(
        default_factory=lambda: GeneratorConfig(
            nprocs=4,
            ops_per_proc=80,
            shared_words=6,
            mix=InstructionMix(
                load=30.0, store=30.0, swap=6.0, cas=6.0, membar=8.0,
                block_load=1.0, block_store=1.0, nonfaulting_load=1.0,
                prefetch=1.0, flush=1.0, branch=1.0, interrupt=0.5,
            ),
        )
    )
    machine: MachineConfig = field(default_factory=MachineConfig)
    model: MemoryModel = TSO
    seed: int = 2004
    sched: SchedSpec = field(default_factory=SchedSpec)
    engine: str = DEFAULT_ENGINE
    batch: int = 1
    pipeline: bool = False

    def __post_init__(self) -> None:
        if self.batch < 1:
            raise ValueError("batch must be >= 1")


@dataclass
class BugHunt:
    """The outcome of hunting one seeded bug.

    ``hung`` marks a hunt whose worker crashed or exceeded the per-task
    timeout on every attempt (see :mod:`repro.analysis.pool`); such a
    hunt ran no conclusive tests and is counted as undetected *and*
    reported separately — never silently dropped.

    ``schedule`` holds the complete JSON :class:`ScheduleTrace` of the
    detecting run (None for undetected hunts): every scheduler decision
    plus the reconstruction metadata, so the failure can be re-executed
    exactly with :func:`repro.analysis.replay.replay_hunt` — even from a
    different process than the pool worker that found it.

    ``ops`` counts the dynamic operations this hunt simulated across
    its attempts — throughput accounting for the fleet status endpoint.
    Like ``schedule`` it is excluded from the hunt digest: a pipelined
    hunt aborts violating runs early and so simulates fewer ops than
    the conventional path while reaching the identical verdict.
    """

    spec: BugSpec
    cpu: str
    detected: bool
    tests_run: int
    detected_on_seed: Optional[int] = None
    via: str = ""
    hung: bool = False
    schedule: Optional[str] = None
    ops: int = 0

    @property
    def unit(self) -> FuncUnit:
        """Functional unit of the hunted bug."""
        return self.spec.unit

    @property
    def bug_class(self) -> BugClass:
        """Bug class of the hunted bug."""
        return self.spec.bug_class

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe representation, stable across processes.

        Only primary fields are stored; derived properties (``unit``,
        ``bug_class``) are recomputed from the spec on load.  The spec
        itself uses the same field layout as a hunt trace's ``fault``
        meta, so :func:`repro.analysis.replay.bug_spec_from_meta` is the
        shared decoder.
        """
        return {
            "spec": {
                "name": self.spec.name,
                "mechanism": self.spec.mechanism.__name__,
                "unit": self.spec.unit.value,
                "bug_class": self.spec.bug_class.value,
                "rate": self.spec.rate,
            },
            "cpu": self.cpu,
            "detected": self.detected,
            "tests_run": self.tests_run,
            "detected_on_seed": self.detected_on_seed,
            "via": self.via,
            "hung": self.hung,
            "schedule": self.schedule,
            "ops": self.ops,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "BugHunt":
        """Inverse of :meth:`to_dict`."""
        seed = data.get("detected_on_seed")
        return cls(
            spec=bug_spec_from_meta(dict(data["spec"])),  # type: ignore[arg-type]
            cpu=str(data["cpu"]),
            detected=bool(data["detected"]),
            tests_run=int(data["tests_run"]),  # type: ignore[arg-type]
            detected_on_seed=None if seed is None else int(seed),  # type: ignore[arg-type]
            via=str(data.get("via", "")),
            hung=bool(data.get("hung", False)),
            schedule=None if data.get("schedule") is None else str(data["schedule"]),
            ops=int(data.get("ops", 0)),  # type: ignore[arg-type]
        )


@dataclass
class CampaignResult:
    """All hunts of a campaign plus derived table rows.

    Timing is reported on two axes that must not be conflated:
    ``wall_seconds`` is elapsed time around the whole campaign, while
    ``cpu_seconds`` sums per-hunt compute time across all workers.  With
    one worker they are nearly equal; with N workers ``cpu_seconds`` can
    approach ``N * wall_seconds``.
    """

    hunts: List[BugHunt]
    wall_seconds: float = 0.0
    cpu_seconds: float = 0.0
    stats: Optional[PoolStats] = None
    #: Human-readable scheduler description (``SchedSpec.describe()``)
    #: of the campaign that produced these hunts.
    sched: str = "random"

    @property
    def seconds(self) -> float:
        """Deprecated alias for :attr:`wall_seconds` (pre-pool callers)."""
        return self.wall_seconds

    def by_cpu(self) -> Dict[str, List[BugHunt]]:
        """Hunts grouped by CPU name."""
        grouped: Dict[str, List[BugHunt]] = {}
        for hunt in self.hunts:
            grouped.setdefault(hunt.cpu, []).append(hunt)
        return grouped

    def table1_rows(self) -> List[Tuple[str, Dict[BugClass, int]]]:
        """Detected-bug counts by class per CPU (the rows of Table 1)."""
        rows = []
        for cpu, hunts in self.by_cpu().items():
            counts = {cls: 0 for cls in BugClass}
            for hunt in hunts:
                if hunt.detected:
                    counts[hunt.bug_class] += 1
            rows.append((cpu, counts))
        return rows

    def table2_rows(self) -> List[Tuple[str, Dict[FuncUnit, int]]]:
        """Detected-bug counts by unit per CPU (the rows of Table 2).

        Environment bugs and unit-less bugs are excluded, matching how
        the paper's Table 2 reconciles with Table 1 (see
        :mod:`repro.sim.cpus`).
        """
        rows = []
        for cpu, hunts in self.by_cpu().items():
            counts = {u: 0 for u in FuncUnit if u != FuncUnit.NONE}
            for hunt in hunts:
                if (
                    hunt.detected
                    and hunt.bug_class != BugClass.ENVIRONMENT
                    and hunt.unit != FuncUnit.NONE
                ):
                    counts[hunt.unit] += 1
            rows.append((cpu, counts))
        return rows

    def detection_rate(self) -> float:
        """Fraction of seeded bugs detected (0.0 with no hunts)."""
        if not self.hunts:
            return 0.0
        return sum(1 for h in self.hunts if h.detected) / len(self.hunts)

    def detection_line(self) -> str:
        """One-line per-policy effectiveness summary for reports."""
        detected = sum(1 for h in self.hunts if h.detected)
        tests = sum(h.tests_run for h in self.hunts)
        return (
            f"sched={self.sched}: {detected}/{len(self.hunts)} bugs detected "
            f"({100.0 * self.detection_rate():.1f}%) in {tests} tests"
        )

    def missed(self) -> List[BugHunt]:
        """Hunts that ended without a detection (including hung ones)."""
        return [h for h in self.hunts if not h.detected]

    def hung_hunts(self) -> List[BugHunt]:
        """Hunts abandoned after worker crashes/timeouts (never silent)."""
        return [h for h in self.hunts if h.hung]

    def exit_code(self) -> int:
        """The documented campaign exit-code contract, derived from hunts.

        0 = every seeded bug detected, 1 = some bugs undetected, 2 = at
        least one hunt hung.  Shared by ``tsotool campaign`` and the
        campaign service so a resumed job reports exactly what a
        from-scratch campaign would.
        """
        if self.hung_hunts():
            return 2
        if self.missed():
            return 1
        return 0

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe representation for archived/merged campaign results.

        Derived rows (``table1_rows``, ``detection_rate``, …) are never
        stored — they are recomputed from the hunts on load, so stored
        results cannot drift from their own tables.
        """
        return {
            "hunts": [h.to_dict() for h in self.hunts],
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
            "stats": None if self.stats is None else self.stats.to_dict(),
            "sched": self.sched,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CampaignResult":
        """Inverse of :meth:`to_dict`."""
        stats = data.get("stats")
        return cls(
            hunts=[BugHunt.from_dict(h) for h in data.get("hunts", [])],  # type: ignore[union-attr]
            wall_seconds=float(data.get("wall_seconds", 0.0)),  # type: ignore[arg-type]
            cpu_seconds=float(data.get("cpu_seconds", 0.0)),  # type: ignore[arg-type]
            stats=None if stats is None else PoolStats.from_dict(dict(stats)),  # type: ignore[arg-type]
            sched=str(data.get("sched", "random")),
        )


class HuntScratch:
    """Reusable per-worker state shared by the hunts of a batch.

    Holds one :class:`TsoMachine` slot (reset between attempts instead
    of re-constructed) and one :class:`~repro.core.context.CheckContext`
    (checker frontier buffers wiped, not re-allocated).  Single-process
    scratch: a scratch never crosses a pool-task boundary, so batched
    and unbatched campaigns stay hunt-for-hunt identical.
    """

    def __init__(self) -> None:
        self.machine: Optional[TsoMachine] = None
        self.context = CheckContext()

    def arm_machine(
        self, program, seed: int, machine_config: MachineConfig,
        faults, policy,
    ) -> TsoMachine:
        """A machine armed for this attempt: reset when possible."""
        machine = self.machine
        if machine is None or machine.config != machine_config:
            machine = TsoMachine(
                program, seed=seed, config=machine_config, faults=faults,
                policy=policy,
            )
            self.machine = machine
            return machine
        return machine.reset(
            program, seed=seed, faults=faults, policy=policy
        )


def _pipeline_applies(spec: BugSpec, config: CampaignConfig) -> bool:
    """Whether an attempt may stream-check instead of run-then-check.

    Only architecture/design hunts qualify: their triage is exactly
    "does the observed run pass analysis", their faults never corrupt
    the observation path (so the observer hook sees the same records
    the batch path would), and the verdict carries no post-run machine
    state.  Programs must also fit the streaming window with margin —
    retirement may lose inference on longer runs, and pipeline mode
    promises verdicts identical to the conventional path.
    """
    if not config.pipeline:
        return False
    if spec.bug_class not in (BugClass.ARCHITECTURE, BugClass.DESIGN):
        return False
    slots = config.generator.nprocs * config.generator.ops_per_proc
    return slots <= DEFAULT_WINDOW // 2


def hunt_bug(
    spec: BugSpec,
    cpu_name: str,
    config: CampaignConfig,
    bug_index: int = 0,
    scratch: Optional[HuntScratch] = None,
) -> BugHunt:
    """Hunt one seeded bug with freshly generated tests.

    One fault is active per run (the paper root-causes failures one at a
    time); the seed stream is derived from the campaign seed, the CPU
    name and the bug index so campaigns are exactly reproducible —
    independent of batching, workers, ``scratch`` reuse and pipeline
    mode, all of which only change *how* the identical runs execute.
    """
    # zlib.crc32 rather than hash(): str hashing is randomized per
    # process, which would make campaigns unreproducible across runs.
    base = (
        config.seed * 1_000_003
        + (zlib.crc32(cpu_name.encode()) % 1_000_003) * 101
        + bug_index * 7_919
    )
    context = scratch.context if scratch is not None else None
    pipelined = _pipeline_applies(spec, config)

    def arm(seed: int) -> TsoMachine:
        fault = spec.instantiate()
        policy = make_policy(config.sched, seed=seed)
        if scratch is None:
            return TsoMachine(
                program, seed=seed, config=config.machine, faults=[fault],
                policy=policy,
            )
        return scratch.arm_machine(
            program, seed, config.machine, [fault], policy
        )

    ops = 0
    with telemetry.span("hunt", bug=spec.name, cpu=cpu_name):
        for attempt in range(config.tests_per_bug):
            seed = base + attempt
            program = generate_program(config.generator, seed=seed)
            machine = arm(seed)
            if pipelined:
                # Check as records retire; a violating seed aborts at
                # the closing record instead of finishing the program.
                stream_result, _ = stream_check_machine(
                    machine, model=config.model, stop_on_violation=True
                )
                ops += sum(len(cpu.records) for cpu in machine.cpus)
                if stream_result.ok:
                    continue
                # Flagged: re-run this one attempt conventionally so
                # verdict, via string and witness match the unbatched
                # path exactly (one extra simulation per detection,
                # the _record_detection trade).
                machine = arm(seed)
            observed = machine.run()
            ops += sum(len(cpu.records) for cpu in machine.cpus)
            detected, via = _triage(
                spec, program, machine, observed, config.model,
                config.engine, context=context,
            )
            if detected:
                return BugHunt(
                    spec=spec, cpu=cpu_name, detected=True,
                    tests_run=attempt + 1, detected_on_seed=seed, via=via,
                    schedule=_record_detection(
                        spec, cpu_name, config, seed, via
                    ),
                    ops=ops,
                )
        return BugHunt(
            spec=spec, cpu=cpu_name, detected=False,
            tests_run=config.tests_per_bug, ops=ops,
        )


def hunt_batch(
    hunts: Sequence[Tuple[BugSpec, str, int]],
    config: CampaignConfig,
    scratch: Optional[HuntScratch] = None,
) -> List[BugHunt]:
    """Hunt several seeded bugs in one call, sharing warm state.

    The batched-dispatch unit: a pool task carrying B independent
    ``(spec, cpu name, bug index)`` hunts pays one task round-trip and
    one worker telemetry flush for all of them, and the hunts share one
    :class:`HuntScratch` (machine resets + checker-buffer reuse).  Each
    hunt's outcome is identical to :func:`hunt_bug` run alone.
    """
    scratch = scratch or HuntScratch()
    telemetry.record("pool.batch_size", len(hunts))
    return [
        hunt_bug(spec, cpu_name, config, bug_index=index, scratch=scratch)
        for spec, cpu_name, index in hunts
    ]


def _record_detection(
    spec: BugSpec, cpu_name: str, config: CampaignConfig, seed: int, via: str
) -> str:
    """Re-run the detecting attempt under a recorder; return the trace JSON.

    Program, fault and policy are all rebuilt from the same seeds, so the
    recorded run is the detected run; the one extra simulation per
    detected bug is noise next to the attempts that led to it.
    """
    recorder = RecordingPolicy(make_policy(config.sched, seed=seed))
    recorder.trace.meta.update(
        hunt_trace_meta(
            spec, cpu_name, config.generator, config.machine, config.model,
            seed, via,
        )
    )
    program = generate_program(config.generator, seed=seed)
    TsoMachine(
        program, seed=seed, config=config.machine,
        faults=[spec.instantiate()], policy=recorder,
    ).run()
    return recorder.trace.to_json()


def _triage(
    spec: BugSpec,
    program,
    machine: TsoMachine,
    observed,
    model: MemoryModel,
    engine: str = DEFAULT_ENGINE,
    context: Optional[CheckContext] = None,
) -> Tuple[bool, str]:
    """Classify one run's outcome against the hunted bug's class."""
    if spec.bug_class == BugClass.MONITOR:
        if machine.monitor_alarms and check(
            program, observed, model=model, engine=engine, context=context
        ).ok:
            return True, "spurious monitor alarm on a TSO-clean run"
        return False, ""
    if spec.bug_class == BugClass.ENVIRONMENT:
        if not check(
            program, observed, model=model, engine=engine, context=context
        ).ok:
            true_result = check(
                program, machine.true_execution, model=model, engine=engine,
                context=context,
            )
            if true_result.ok:
                return True, "observed trace fails analysis, true trace passes"
        return False, ""
    # Architecture / design: the machine itself misbehaved.
    result = check(program, observed, model=model, engine=engine, context=context)
    if not result.ok:
        return True, f"TSO violation ({result.violation.kind.value})"
    return False, ""


def _hunt_task(task: Tuple[BugSpec, str, CampaignConfig, int]) -> BugHunt:
    """Picklable pool entry point: hunt one seeded bug in a worker."""
    spec, cpu_name, config, bug_index = task
    return hunt_bug(spec, cpu_name, config, bug_index=bug_index)


def _hunt_batch_task(
    task: Tuple[Sequence[Tuple[BugSpec, str, int]], CampaignConfig],
) -> List[BugHunt]:
    """Picklable pool entry point: hunt a batch of seeded bugs in a worker."""
    hunts, config = task
    return hunt_batch(hunts, config)


def run_campaign(
    cpus: Sequence[CpuConfig] = CPU_CONFIGS,
    config: Optional[CampaignConfig] = None,
    workers: int = 1,
    task_timeout: Optional[float] = None,
    progress: Optional[ProgressFn] = None,
    record_dir: Optional[str] = None,
) -> CampaignResult:
    """Hunt every seeded bug of every CPU; return the full result.

    With ``workers > 1`` hunts are sharded across a process pool
    (:mod:`repro.analysis.pool`).  Every hunt's seed stream is derived
    from ``(campaign seed, cpu name, bug index)`` inside
    :func:`hunt_bug`, independent of scheduling, so the hunts are
    hunt-for-hunt identical to the sequential path for the same master
    seed.  A hunt whose worker crashes or exceeds ``task_timeout`` twice
    is recorded with ``hung=True`` (and counts as undetected).

    With ``config.batch > 1`` hunts are grouped so each pool task
    carries a whole batch (see :func:`hunt_batch`); a hung batch task
    tombstones every member hunt.  Note ``task_timeout`` then covers a
    batch, not a single hunt — scale it with the batch size.

    With ``record_dir`` set, every detected hunt's
    :class:`~repro.sched.trace.ScheduleTrace` is persisted there as
    ``<bug-name>.schedule.json`` — each file replayable on its own with
    ``tsotool replay`` / :func:`repro.analysis.replay.replay_hunt`.
    """
    config = config or CampaignConfig()
    work: List[Tuple[BugSpec, str, int]] = []
    for cpu in cpus:
        for index, spec in enumerate(cpu.bugs):
            work.append((spec, cpu.name, index))
    hunts: List[BugHunt] = []
    if config.batch > 1:
        # Batched dispatch: B hunts ride one pool task (one round-trip,
        # one worker telemetry flush, shared HuntScratch).  Chunking is
        # pure grouping — each hunt's seeds come from (seed, cpu, bug
        # index), so the hunt set matches the unbatched path exactly.
        chunks = [
            work[i : i + config.batch]
            for i in range(0, len(work), config.batch)
        ]
        results, stats = run_tasks(
            _hunt_batch_task,
            [(chunk, config) for chunk in chunks],
            workers=workers,
            task_timeout=task_timeout,
            labels=[
                chunk[0][0].name
                + (f" (+{len(chunk) - 1})" if len(chunk) > 1 else "")
                for chunk in chunks
            ],
            progress=progress,
        )
        for chunk, batch in zip(chunks, results):
            if batch is None:
                # The whole chunk's worker crashed or timed out: every
                # member hunt gets a tombstone, never a silent drop.
                batch = [
                    BugHunt(
                        spec=spec, cpu=cpu_name, detected=False, tests_run=0,
                        via="worker crashed or timed out", hung=True,
                    )
                    for spec, cpu_name, _ in chunk
                ]
            hunts.extend(batch)
    else:
        tasks = [(spec, cpu_name, config, index) for spec, cpu_name, index in work]
        results, stats = run_tasks(
            _hunt_task,
            tasks,
            workers=workers,
            task_timeout=task_timeout,
            labels=[spec.name for spec, _, _ in work],
            progress=progress,
        )
        for task, hunt in zip(tasks, results):
            if hunt is None:
                spec, cpu_name, _, _ = task
                hunt = BugHunt(
                    spec=spec, cpu=cpu_name, detected=False, tests_run=0,
                    via="worker crashed or timed out", hung=True,
                )
            hunts.append(hunt)
    if record_dir is not None:
        os.makedirs(record_dir, exist_ok=True)
        for hunt in hunts:
            if hunt.schedule is None:
                continue
            path = os.path.join(record_dir, f"{hunt.spec.name}.schedule.json")
            with open(path, "w") as fh:
                fh.write(hunt.schedule + "\n")
    return CampaignResult(
        hunts=hunts,
        wall_seconds=stats.wall_seconds,
        cpu_seconds=stats.cpu_seconds,
        stats=stats,
        sched=config.sched.describe(),
    )


# ---------------------------------------------------------------------------
# Table rendering
# ---------------------------------------------------------------------------

_T1_COLS = [
    BugClass.ARCHITECTURE, BugClass.DESIGN, BugClass.MONITOR, BugClass.ENVIRONMENT,
]
_T2_COLS = [
    FuncUnit.PIPE, FuncUnit.CACHES, FuncUnit.TLB, FuncUnit.LSU,
    FuncUnit.MEM_CNTLR, FuncUnit.INTERCONNECT,
]


def format_table1(result: CampaignResult) -> str:
    """Render detected-bug counts by class — the shape of Table 1."""
    header = ["CPU"] + [c.value for c in _T1_COLS]
    rows = [header]
    totals = {c: 0 for c in _T1_COLS}
    for cpu, counts in result.table1_rows():
        rows.append([cpu] + [str(counts[c]) for c in _T1_COLS])
        for c in _T1_COLS:
            totals[c] += counts[c]
    rows.append(["Total"] + [str(totals[c]) for c in _T1_COLS])
    return _render(rows)


def format_table2(result: CampaignResult) -> str:
    """Render detected-bug counts by unit — the shape of Table 2."""
    header = ["CPU"] + [u.value for u in _T2_COLS]
    rows = [header]
    totals = {u: 0 for u in _T2_COLS}
    for cpu, counts in result.table2_rows():
        rows.append([cpu] + [str(counts[u]) for u in _T2_COLS])
        for u in _T2_COLS:
            totals[u] += counts[u]
    rows.append(["Total"] + [str(totals[u]) for u in _T2_COLS])
    return _render(rows)


def _render(rows: List[List[str]]) -> str:
    widths = [max(len(row[i]) for row in rows) for i in range(len(rows[0]))]
    lines = []
    for idx, row in enumerate(rows):
        line = "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        lines.append(line.rstrip())
        if idx == 0:
            lines.append("-" * len(line))
    return "\n".join(lines)
