"""The operational TSO multiprocessor (the paper's "platform", Step 2).

``TsoMachine`` executes a :class:`~repro.model.program.Program` under
seeded random interleaving and returns the observed
:class:`~repro.model.trace.Execution`.  The golden (fault-free) machine
implements exactly the TSO axioms:

* stores enter a per-CPU FIFO store buffer and become globally visible —
  memory write plus same-step invalidation of every other CPU's cached
  copy — when their entry drains (Order/StoreStore/Value axioms);
* loads forward from the newest matching own-buffer entry, else read the
  coherent cache/memory (the Value axiom's two store sets);
* membars drain the buffer before the next instruction issues;
* swaps and compare-and-swaps drain the buffer, then read and write
  memory in one indivisible step (Atomicity axiom);
* every scheduler decision — which CPU acts, drain-vs-issue, which PSO
  entry drains, invalidate-delivery jitter — is delegated to a
  :class:`~repro.sched.policy.SchedulePolicy`.  The default
  :class:`~repro.sched.policy.RandomPolicy` draws from a seeded PRNG
  exactly as the pre-refactor inline scheduler did, so runs are exactly
  reproducible — the property that makes a TSOtool failure "a good
  probability of being reproduced in the simulation environment"
  (Sec. 5.2) — while PCT, systematic-sweep and replay policies explore
  or pin the interleaving instead (see :mod:`repro.sched`).

With ``MachineConfig.sc_mode`` the store buffer is drained eagerly after
every store, yielding sequentially-consistent executions (used to test
the SC checker).  Injected :class:`~repro.sim.faults.Fault` objects
perturb specific mechanisms to reproduce the paper's bug catalog.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import telemetry
from repro.generator.lfsr import Lfsr
from repro.model.ops import (
    WORD_SIZE,
    IBlockLoad,
    IBlockStore,
    IBranch,
    ICas,
    IFlushCache,
    IFlushPipe,
    IInterrupt,
    ILoad,
    IMembar,
    INonFaultingLoad,
    IPrefetch,
    IStore,
    ISwap,
    Instr,
)
from repro.model.program import Program
from repro.model.trace import DynRecord, Execution
from repro.sched.policy import RandomPolicy, SchedulePolicy
from repro.sched.spec import SchedSpec, make_policy
from repro.sim import interconnect as ic
from repro.sim.cache import CpuCache
from repro.sim.cpu import Cpu
from repro.sim.faults import Fault
from repro.sim.interconnect import Interconnect
from repro.sim.memory import Memory
from repro.sim.storebuffer import BufferedStore, StoreBuffer


@dataclass
class MachineStats:
    """Event counters exposed for coverage reporting (Sec. 3.1: "tools
    which report test coverage").

    Attributes:
        forwards: loads satisfied by store-to-load forwarding.
        cache_hits: loads served from the CPU's cache snapshot.
        memory_reads: loads that went all the way to memory.
        commits: store-buffer entries made globally visible.
        invalidations: invalidate deliveries performed.
        buffer_highwater: per-CPU maximum store-buffer occupancy.
        ipis_delivered: serializing interrupt entries taken.
    """

    forwards: int = 0
    cache_hits: int = 0
    memory_reads: int = 0
    commits: int = 0
    invalidations: int = 0
    buffer_highwater: List[int] = field(default_factory=list)
    ipis_delivered: int = 0
    #: Scheduler decision points consulted on the policy (coverage: how
    #: much interleaving freedom the run actually had).
    sched_decisions: int = 0
    #: Write-back mode only: dirty lines written back to memory, and
    #: misses served by another cache's dirty line.
    writebacks: int = 0
    snoop_hits: int = 0


@dataclass(frozen=True)
class MachineConfig:
    """Tunables of the simulated machine.

    Attributes:
        buffer_capacity: store-buffer entries per CPU.
        drain_bias: probability that a scheduler tick drains a buffer
            entry instead of issuing the CPU's next instruction; higher
            values shorten store-buffer residency.
        sc_mode: drain the buffer immediately after every store, which
            collapses TSO to SC (for testing the SC checker).
        writeback: write-back caching — a committed store dirties the
            owner's cache line instead of memory; other processors snoop
            dirty lines on a miss, and memory is updated only when a
            dirty victim is evicted or its owner is superseded.  The
            richer substrate behind the Fig. 6 "write cache" story.
        cache_lines: per-CPU resident-line capacity (0 = unbounded);
            with ``writeback`` this makes evictions and write-backs
            actually happen.
        pso_mode: drain any buffer entry whose words are not shadowed by
            an older entry, instead of strict FIFO — different-address
            stores may become visible out of order, which is exactly
            PSO's extra relaxation (per-address order is preserved).
        hw_prefetch: model the hardware prefetcher the paper mentions
            ("certain patterns of load accesses can also trigger a
            hardware prefetch"): two consecutive loads from adjacent
            cache lines install the following line.  Value-transparent
            on a healthy machine; it widens the attack surface of the
            cache fault models.
        enable_monitor: run the coherence runtime checker each commit
            (the "runtime checkers monitoring the design" of Sec. 3.2).
        max_tick_factor: safety valve — the run aborts after
            ``max_tick_factor * total_instructions + 1000`` ticks.
        sched: schedule-exploration strategy spec
            (:class:`~repro.sched.spec.SchedSpec`); ``None`` means the
            classic seeded-random scheduler.  An explicit ``policy``
            object passed to :class:`TsoMachine` overrides this.
        invalidate_jitter: maximum ticks the schedule policy may delay
            any single invalidate delivery (0 = atomic same-step
            visibility, the golden TSO behaviour).  Lets policies explore
            invalidate-in-flight windows on a *healthy* machine; this is
            a scheduling relaxation, so analysis of jittered runs should
            expect store-visibility races.
    """

    buffer_capacity: int = 8
    drain_bias: float = 0.35
    sc_mode: bool = False
    pso_mode: bool = False
    hw_prefetch: bool = False
    writeback: bool = False
    cache_lines: int = 0
    enable_monitor: bool = False
    max_tick_factor: int = 400
    sched: Optional[SchedSpec] = None
    invalidate_jitter: int = 0

    def __post_init__(self) -> None:
        if self.sc_mode and self.pso_mode:
            raise ValueError("sc_mode and pso_mode are mutually exclusive")
        if self.invalidate_jitter < 0:
            raise ValueError("invalidate_jitter must be >= 0")


class TsoMachine:
    """Executes one program under seeded random interleaving."""

    def __init__(
        self,
        program: Program,
        seed: int = 0,
        config: Optional[MachineConfig] = None,
        faults: Sequence[Fault] = (),
        policy: Optional[SchedulePolicy] = None,
        observer: Optional[Callable[[int, int, DynRecord], None]] = None,
    ) -> None:
        self.config = config or MachineConfig()
        self.interconnect: Optional[Interconnect] = None
        self.caches: List[CpuCache] = []
        self.buffers: List[StoreBuffer] = []
        # Profile-guided dispatch state.  The scheduler loop runs once
        # per tick and dominates simulation time, so hoist what it
        # touches: a bound-method handler table (one dict hit, no
        # descriptor rebind per issue) and per-cpu scheduler rows
        # pairing each cpu with its buffer and instruction count (the
        # ``cpu.done`` property and two list indexes per cpu per tick
        # priced out in cProfile).  Built once — :meth:`reset` reuses it.
        self._dispatch = {
            cls: getattr(self, handler.__name__)
            for cls, handler in self._HANDLERS.items()
        }
        self._arm(program, seed, faults, policy, observer)

    def reset(
        self,
        program: Optional[Program] = None,
        seed: int = 0,
        faults: Sequence[Fault] = (),
        policy: Optional[SchedulePolicy] = None,
        observer: Optional[Callable[[int, int, DynRecord], None]] = None,
    ) -> "TsoMachine":
        """Re-arm this machine for another run, reusing its containers.

        A reset machine is behaviorally identical to a freshly
        constructed ``TsoMachine(program, seed, config, faults, policy)``
        with the same (immutable) config — same policy derivation, same
        per-CPU and per-fault seed streams — but reuses the allocated
        caches, store buffers, interconnect and dispatch table instead
        of re-allocating them, which is the per-seed fixed cost the
        batched campaign path amortizes.  ``program=None`` re-arms with
        the current program.  Returns ``self`` for chaining.
        """
        tel = telemetry.get_telemetry()
        if tel.enabled:
            tel.count("sim.machine_resets")
        self._arm(program or self.program, seed, faults, policy, observer)
        return self

    def _arm(
        self,
        program: Program,
        seed: int,
        faults: Sequence[Fault],
        policy: Optional[SchedulePolicy],
        observer: Optional[Callable[[int, int, DynRecord], None]],
    ) -> None:
        """Per-run state setup, shared by ``__init__`` and :meth:`reset`.

        Mirrors the historical constructor order exactly (policy before
        memory before interconnect before CPUs before fault attach) so
        seed streams and any fault's attach-time view of the machine are
        unchanged; containers whose shape still fits are cleared in
        place rather than rebuilt.
        """
        program.validate()
        self.program = program
        if policy is not None:
            self.policy = policy
        elif self.config.sched is not None:
            self.policy = make_policy(self.config.sched, seed=seed)
        else:
            self.policy = RandomPolicy(seed)
        self.policy.bind(self)
        self.memory = Memory(initial=dict(program.initial))
        self.memory.register_valid(program.addresses())
        nprocs = program.nprocs
        if self.interconnect is None or self.interconnect.ncpus != nprocs:
            self.interconnect = Interconnect(
                nprocs,
                policy=self.policy,
                jitter=self.config.invalidate_jitter,
            )
        else:
            self.interconnect.policy = self.policy
            self.interconnect.pending.clear()
        if len(self.caches) != nprocs:
            self.caches = [
                CpuCache(capacity=self.config.cache_lines)
                for _ in range(nprocs)
            ]
            self.buffers = [
                StoreBuffer(self.config.buffer_capacity)
                for _ in range(nprocs)
            ]
        else:
            for cache in self.caches:
                cache.clear()
            for buffer in self.buffers:
                buffer.clear()
        self.cpus = [
            Cpu(pid=pid, thread=thread, lfsr=Lfsr(seed * 7919 + pid + 1))
            for pid, thread in enumerate(program.threads)
        ]
        self.faults = list(faults)
        for i, fault in enumerate(self.faults):
            fault.attach(self, seed * 104729 + i + 1)
        self.shared_words = sorted(program.addresses())
        self.shared_word_set = set(self.shared_words)
        self.tick = 0
        self.monitor_alarms: List[str] = []
        self.true_execution: Optional[Execution] = None
        self.stats = MachineStats(buffer_highwater=[0] * nprocs)
        #: Observed global store order: (word address, value) per commit,
        #: the Sec. 3.2 "additional observability" fed to
        #: :func:`repro.core.observability.check_with_store_order`.
        self.commit_order: List[Tuple[int, int]] = []
        #: Per-record observation hook ``(pid, rec_idx, observed_record)``,
        #: called the moment a CPU retires a dynamic record — the same
        #: data :func:`repro.model.expansion.expand` consumes, but at
        #: emission time; this is how the streaming checker
        #: (:func:`repro.core.stream.stream_check_machine`) pipelines
        #: checking with simulation.  Must be installed before :meth:`run`.
        #: The hook sees records *after* observation-path fault
        #: corruption; corruption is applied at retire time rather than
        #: end of run, so a stateful fault's RNG draws interleave with the
        #: run instead of following it — streamed and batch observations
        #: of the same seed are each internally deterministic but may
        #: corrupt different records.  Exceptions raised by the hook abort
        #: the run (used to stop on a detected violation).
        self.observer = observer
        self._observed_stream: List[List[DynRecord]] = [
            [] for _ in range(nprocs)
        ]
        self._sched_rows = [
            (cpu, self.buffers[cpu.pid], len(cpu.thread))
            for cpu in self.cpus
        ]

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------

    def run(self) -> Execution:
        """Execute to completion; return the *observed* execution.

        The observed trace may differ from ``self.true_execution`` only
        when an environment-class fault corrupts the observation path.
        """
        with telemetry.span("simulate", procs=len(self.cpus)):
            observed = self._run_to_completion()
        tel = telemetry.get_telemetry()
        if tel.enabled:
            tel.count("sim.runs")
            tel.count("sim.cycles", self.tick)
            tel.count("sim.drains", self.stats.commits)
            tel.count("sim.invalidates", self.stats.invalidations)
            tel.count("sim.forwards", self.stats.forwards)
            tel.count("sim.sched_decisions", self.stats.sched_decisions)
            tel.record("sim.cycles_per_run", self.tick)
        return observed

    def _run_to_completion(self) -> Execution:
        total = sum(len(t) for t in self.program.threads)
        max_ticks = self.config.max_tick_factor * max(total, 1) + 1000
        deliver_due = self.interconnect.deliver_due
        deliver = self._deliver_invalidate
        poll_monitor = self._poll_monitor
        pick_cpu = self._pick_cpu
        step = self._step
        finished = self._finished
        while not finished():
            self.tick += 1
            if self.tick > max_ticks:
                raise RuntimeError(
                    f"machine did not quiesce within {max_ticks} ticks "
                    "(scheduler livelock?)"
                )
            deliver_due(self.tick, deliver)
            poll_monitor()
            cpu = pick_cpu()
            if cpu is not None:
                step(cpu)
        self.interconnect.flush(self._deliver_invalidate)

        true_records = [list(cpu.records) for cpu in self.cpus]
        self.true_execution = Execution(records=true_records)
        observed = []
        for cpu in self.cpus:
            streamed = self._observed_stream[cpu.pid]
            if len(streamed) == len(cpu.records):
                # Observer path: records were observed at retire time;
                # reuse them (re-observing would re-draw fault RNG).
                observed.append(list(streamed))
            else:
                observed.append(
                    [self._observe(cpu.pid, rec) for rec in cpu.records]
                )
        return Execution(records=observed)

    def fault_reports(self):
        """Per-fault activation accounting (campaign triage)."""
        return [fault.report() for fault in self.faults]

    def _finished(self) -> bool:
        return all(
            cpu.done and self.buffers[cpu.pid].empty for cpu in self.cpus
        ) and not self.interconnect.pending

    def _pick_cpu(self) -> Optional[Cpu]:
        runnable = [
            cpu.pid
            for cpu, buffer, nistrs in self._sched_rows
            if cpu.pc < nistrs or buffer._entries
        ]
        if not runnable:
            return None
        self.stats.sched_decisions += 1
        return self.cpus[self.policy.pick_cpu(runnable)]

    def _step(self, cpu: Cpu) -> None:
        """One scheduler action for one CPU: drain, resume, or issue."""
        buffer = self.buffers[cpu.pid]
        if cpu.pending_ipi:
            # Interrupt entry is serializing: the handler runs only after
            # every pending store is globally visible.
            self._drain_all(cpu)
            cpu.pending_ipi = False
            self.stats.ipis_delivered += 1
            return
        if cpu.done:
            self._drain_one(cpu)
            return
        if not buffer.empty:
            self.stats.sched_decisions += 1
            if self.policy.should_drain(cpu.pid, buffer):
                self._drain_one(cpu)
                return
        self._issue(cpu)

    # ------------------------------------------------------------------
    # Commit path (global visibility)
    # ------------------------------------------------------------------

    def _drain_one(self, cpu: Cpu) -> None:
        buffer = self.buffers[cpu.pid]
        if buffer.empty:
            return
        index = 0
        for fault in self.faults:
            picked = fault.pick_drain_index(cpu.pid, buffer)
            if picked is not None:
                index = min(picked, len(buffer) - 1)
                break
        else:
            if self.config.pso_mode:
                eligible = self._pso_eligible(buffer)
                self.stats.sched_decisions += 1
                index = self.policy.pick_drain_index(eligible)
        entry = buffer.pop(index)
        self._commit(cpu.pid, entry.words, cacheable=entry.cacheable)

    @staticmethod
    def _pso_eligible(buffer: StoreBuffer) -> List[int]:
        """Drainable entry indices that keep per-address FIFO order.

        An entry is eligible when no older entry writes any of the same
        words; draining it early reorders only different-address stores,
        which is the one extra relaxation PSO allows over TSO.  Uses the
        per-entry cached word sets so the scan is one set intersection
        per entry instead of rebuilding each set from the word tuples.
        """
        eligible = []
        seen_words: set = set()
        for idx, entry in enumerate(buffer.entries()):
            words = entry.word_set
            if not (words & seen_words):
                eligible.append(idx)
            seen_words |= words
        return eligible

    def _drain_all(self, cpu: Cpu) -> None:
        while not self.buffers[cpu.pid].empty:
            self._drain_one(cpu)

    def _commit(
        self, pid: int, words: Tuple[Tuple[int, int], ...],
        cacheable: bool = True,
    ) -> None:
        """Make a store globally visible (or let a fault subvert that).

        Non-cacheable commits skip the committer's own cache install;
        other CPUs' copies are still invalidated for robustness (healthy
        software never aliases a line cacheably and non-cacheably, but a
        fault-perturbed run might).
        """
        action = "commit"
        for fault in self.faults:
            action, words = fault.on_commit(pid, words)
            if action != "commit":
                break
        if action == "drop":
            return
        if action == "local":
            # Lost dirty bit: own cache gets the data, memory never does,
            # and the line self-destructs after a few uses.
            cache = self.caches[pid]
            for addr, value in words:
                cache.install(addr, value)
                line = cache.line(addr)
                if line is not None:
                    line.stale = True
                    line.ttl = self._lost_line_ttl()
            return
        self.stats.commits += 1
        self.commit_order.extend(words)
        if self.config.writeback and cacheable:
            self._commit_writeback(pid, words)
            return
        for addr, value in words:
            self.memory.write(addr, value)
            if cacheable:
                self.caches[pid].install(addr, value)
            self._broadcast_invalidate(pid, addr)

    def _commit_writeback(self, pid: int, words: Tuple[Tuple[int, int], ...]) -> None:
        """Write-back commit: take ownership, dirty the line, no memory write.

        A previous owner's dirty line is written back to memory first so
        its committed words for *other* addresses of the line survive the
        ownership transfer.
        """
        for addr, value in words:
            for other in range(len(self.caches)):
                if other == pid:
                    continue
                line = self.caches[other].line(addr)
                if line is not None and line.dirty:
                    for waddr, wvalue in line.dirty_items():
                        self.memory.write(waddr, wvalue)
                    self.stats.writebacks += 1
                    line.dirty_words.clear()
            self.caches[pid].install(addr, value, dirty=True)
            self._broadcast_invalidate(pid, addr)
            self._evict_as_needed(pid)

    def _evict_as_needed(self, pid: int) -> None:
        cache = self.caches[pid]
        while cache.needs_eviction():
            victim = cache.evict_victim()
            if victim is None:
                return
            _line_addr, line = victim
            if line.dirty:
                for waddr, wvalue in line.dirty_items():
                    self.memory.write(waddr, wvalue)
                self.stats.writebacks += 1

    def _lost_line_ttl(self) -> int:
        for fault in self.faults:
            ttl = getattr(fault, "ttl", None)
            if ttl is not None:
                return ttl
        return 3

    def _broadcast_invalidate(self, src: int, addr: int) -> None:
        def verdict(s: int, victim: int, a: int) -> Tuple[str, int]:
            if self.caches[victim].line(a) is None:
                return ic.DELIVER, 0  # nothing to invalidate; don't tempt faults
            for fault in self.faults:
                action, delay = fault.invalidate_verdict(s, victim, a)
                if action != ic.DELIVER:
                    return action, delay
            return ic.DELIVER, 0

        self.interconnect.broadcast(
            src, addr, self.tick, self._deliver_invalidate, verdict
        )

    def _deliver_invalidate(self, victim: int, addr: int) -> None:
        if self.caches[victim].invalidate(addr):
            self.stats.invalidations += 1

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------

    def _read_word(
        self, pid: int, addr: int, allow_forward: bool = True,
        cacheable: bool = True,
    ) -> int:
        """A load's value for one word: buffer, then cache, then memory.

        Non-cacheable loads skip the cache entirely (no lookup, no line
        install) — they always observe the coherent memory, modulo the
        store buffer and any memory-controller fault.
        """
        for fault in self.faults:
            addr = fault.translate_load(pid, addr)
        if allow_forward:
            buffer = self.buffers[pid]
            forwarded = buffer.forward(addr)
            if forwarded is not None:
                if any(f.skip_forwarding(pid, addr) for f in self.faults):
                    pass  # fault: pretend the buffer had no match
                else:
                    self.stats.forwards += 1
                    return forwarded
        if cacheable:
            cached = self.caches[pid].lookup(addr)
            if cached is not None:
                self.stats.cache_hits += 1
                return cached
        if self.config.writeback:
            # Snoop: a dirty line in another cache is newer than memory.
            for other in range(len(self.caches)):
                if other == pid:
                    continue
                snooped = self.caches[other].dirty_value(addr)
                if snooped is not None:
                    self.stats.snoop_hits += 1
                    if cacheable:
                        self.caches[pid].install(addr, snooped)
                        self._evict_as_needed(pid)
                    return snooped
        self.stats.memory_reads += 1
        value = self.memory.read(addr)
        for fault in self.faults:
            value = fault.on_load_value(pid, addr, value)
        if cacheable:
            self.caches[pid].install(addr, value)
            self._evict_as_needed(pid)
        return value

    def _read_words(
        self, pid: int, addr: int, nwords: int, cacheable: bool = True
    ) -> Tuple[int, ...]:
        return tuple(
            self._read_word(pid, addr + i * WORD_SIZE, cacheable=cacheable)
            for i in range(nwords)
        )

    # ------------------------------------------------------------------
    # Issue path
    # ------------------------------------------------------------------

    def _issue(self, cpu: Cpu) -> None:
        instr = cpu.thread.instrs[cpu.pc]
        self._dispatch[type(instr)](cpu, instr)

    def _advance(self, cpu: Cpu, instr_index: int, rec: DynRecord, skip: int = 0) -> None:
        cpu.record(instr_index, rec)
        cpu.pc += 1 + skip
        if self.observer is not None:
            # Observe (fault-corrupt) once, here; the cached record is
            # reused for the final Execution so the observer and the
            # returned trace are guaranteed to agree.
            observed = self._observe(cpu.pid, rec)
            self._observed_stream[cpu.pid].append(observed)
            self.observer(cpu.pid, len(cpu.records) - 1, observed)

    def _issue_load(self, cpu: Cpu, instr: ILoad) -> None:
        loaded = self._read_words(
            cpu.pid, instr.addr, instr.words(), cacheable=instr.cacheable
        )
        if self.config.hw_prefetch and instr.cacheable:
            self._maybe_hw_prefetch(cpu, instr.addr)
        self._advance(cpu, cpu.pc, DynRecord(instr=instr, loaded=loaded))

    def _maybe_hw_prefetch(self, cpu: Cpu, addr: int) -> None:
        """Install the next line after two sequential-line loads."""
        from repro.sim.cache import LINE_SIZE, line_of

        line = line_of(addr)
        if cpu.last_load_line == line - LINE_SIZE:
            nxt = line + LINE_SIZE
            for word in self.shared_words:
                if nxt <= word < nxt + LINE_SIZE:
                    self._install_clean(
                        cpu.pid, word, self._coherent_fill_value(cpu.pid, word)
                    )
        cpu.last_load_line = line

    def _issue_store(self, cpu: Cpu, instr: IStore) -> None:
        buffer = self.buffers[cpu.pid]
        if buffer.full:
            self._drain_one(cpu)
            return  # retry the store on a later tick
        words = tuple(
            (instr.addr + i * WORD_SIZE, cpu.next_value())
            for i in range(instr.words())
        )
        buffer.push(BufferedStore(
            words=words, tag=f"P{cpu.pid}.{cpu.pc}", cacheable=instr.cacheable,
        ))
        self._note_buffer_depth(cpu.pid)
        for fault in self.faults:
            fault.on_buffer_push(cpu.pid, buffer)
        rec = DynRecord(instr=instr, stored=tuple(v for _, v in words))
        self._advance(cpu, cpu.pc, rec)
        if self.config.sc_mode:
            self._drain_all(cpu)

    def _issue_block_store(self, cpu: Cpu, instr: IBlockStore) -> None:
        buffer = self.buffers[cpu.pid]
        nchunks = instr.words() // 2
        stored: List[int] = []
        for chunk in range(nchunks):
            # A block store streams eight 8-byte chunks through the write
            # path; with a buffer smaller than the block, earlier chunks
            # simply commit before later ones enter (still FIFO order).
            while buffer.full:
                self._drain_one(cpu)
            words = tuple(
                (instr.addr + (chunk * 2 + i) * WORD_SIZE, cpu.next_value())
                for i in range(2)
            )
            buffer.push(BufferedStore(words=words, tag=f"P{cpu.pid}.{cpu.pc}+{chunk}"))
            stored.extend(v for _, v in words)
        self._note_buffer_depth(cpu.pid)
        for fault in self.faults:
            fault.on_buffer_push(cpu.pid, buffer)
        self._advance(cpu, cpu.pc, DynRecord(instr=instr, stored=tuple(stored)))
        if self.config.sc_mode:
            self._drain_all(cpu)

    def _issue_block_load(self, cpu: Cpu, instr: IBlockLoad) -> None:
        loaded = self._read_words(cpu.pid, instr.addr, instr.words())
        self._advance(cpu, cpu.pc, DynRecord(instr=instr, loaded=loaded))

    def _issue_membar(self, cpu: Cpu, instr: IMembar) -> None:
        if all(f.membar_effective(cpu.pid) for f in self.faults):
            self._drain_all(cpu)
        self._advance(cpu, cpu.pc, DynRecord(instr=instr))

    def _issue_swap(self, cpu: Cpu, instr: ISwap) -> None:
        self._drain_all(cpu)
        loaded = tuple(
            self._read_word(cpu.pid, instr.addr + i * WORD_SIZE, allow_forward=False)
            for i in range(instr.words())
        )
        words = tuple(
            (instr.addr + i * WORD_SIZE, cpu.next_value())
            for i in range(instr.words())
        )
        rec = DynRecord(instr=instr, loaded=loaded, stored=tuple(v for _, v in words))
        self._advance(cpu, cpu.pc, rec)
        self._finish_atomic(cpu, words)

    def _issue_cas(self, cpu: Cpu, instr: ICas) -> None:
        self._drain_all(cpu)
        loaded = tuple(
            self._read_word(cpu.pid, instr.addr + i * WORD_SIZE, allow_forward=False)
            for i in range(instr.words())
        )
        compare_rec = cpu.record_by_instr.get(instr.compare_from)
        expected = compare_rec.loaded if compare_rec is not None else None
        if expected is not None and loaded == expected:
            words = tuple(
                (instr.addr + i * WORD_SIZE, cpu.next_value())
                for i in range(instr.words())
            )
            rec = DynRecord(
                instr=instr, loaded=loaded,
                stored=tuple(v for _, v in words), cas_ok=True,
            )
            self._advance(cpu, cpu.pc, rec)
            self._finish_atomic(cpu, words)
        else:
            # Compare failed (or its companion load was branch-skipped):
            # the CAS degenerates to a plain load.
            rec = DynRecord(instr=instr, loaded=loaded, cas_ok=False)
            self._advance(cpu, cpu.pc, rec)

    def _finish_atomic(self, cpu: Cpu, words: Tuple[Tuple[int, int], ...]) -> None:
        """Write half of an atomic: immediate, unless a fault opens a window.

        The faulty path models the paper's Fig. 7 root cause — "the lock
        for the atomic swap to be released early, before the store part of
        the swap was complete": the store half is demoted to an ordinary
        store-buffer entry, so the CPU keeps executing and other
        processors' stores can slip between the atomic's read and write.
        """
        if any(f.atomic_window(cpu.pid) for f in self.faults):
            self.buffers[cpu.pid].push(
                BufferedStore(words=words, tag=f"P{cpu.pid} leaked-atomic")
            )
        else:
            self._commit(cpu.pid, words)

    def _issue_nonfaulting(self, cpu: Cpu, instr: INonFaultingLoad) -> None:
        if instr.faulting or not self.memory.is_valid(instr.addr):
            loaded = tuple(0 for _ in range(instr.words()))
            rec = DynRecord(instr=instr, loaded=loaded, faulted=True)
        else:
            loaded = self._read_words(cpu.pid, instr.addr, instr.words())
            rec = DynRecord(instr=instr, loaded=loaded, faulted=False)
        self._advance(cpu, cpu.pc, rec)

    def _issue_prefetch(self, cpu: Cpu, instr: IPrefetch) -> None:
        # Install the word into the cache; no architectural effect.  A
        # dirty resident line must not be clobbered, and the fill must
        # come through the coherent path (snooped dirty data, not stale
        # memory).
        self._install_clean(
            cpu.pid, instr.addr, self._coherent_fill_value(cpu.pid, instr.addr)
        )
        self._advance(cpu, cpu.pc, DynRecord(instr=instr))

    def _install_clean(self, pid: int, addr: int, value: int) -> None:
        """Install a memory-sourced value unless the word is held dirty."""
        line = self.caches[pid].line(addr)
        if line is not None and addr in line.dirty_words:
            return
        self.caches[pid].install(addr, value)
        self._evict_as_needed(pid)

    def _coherent_fill_value(self, pid: int, addr: int) -> int:
        """The value a cache fill must install: snooped dirty data wins.

        In write-back mode memory lags dirty lines, so any fill that
        bypasses the snoop (prefetches!) would install stale data as
        clean — the exact mechanism of the coherence bug this fixed.
        """
        if self.config.writeback:
            for other in range(len(self.caches)):
                if other == pid:
                    continue
                snooped = self.caches[other].dirty_value(addr)
                if snooped is not None:
                    return snooped
        return self.memory.read(addr)

    def _issue_flush_cache(self, cpu: Cpu, instr: IFlushCache) -> None:
        # A flush writes dirty data back before dropping the line — a
        # flush is never allowed to lose committed stores.
        line = self.caches[cpu.pid].line(instr.addr)
        if line is not None and line.dirty:
            for waddr, wvalue in line.dirty_items():
                self.memory.write(waddr, wvalue)
            self.stats.writebacks += 1
        self.caches[cpu.pid].invalidate(instr.addr)
        self._advance(cpu, cpu.pc, DynRecord(instr=instr))

    def _issue_flush_pipe(self, cpu: Cpu, instr: IFlushPipe) -> None:
        self._advance(cpu, cpu.pc, DynRecord(instr=instr))

    def _issue_interrupt(self, cpu: Cpu, instr: IInterrupt) -> None:
        target = instr.target % len(self.cpus)
        if target != cpu.pid:
            self.cpus[target].pending_ipi = True
        self._advance(cpu, cpu.pc, DynRecord(instr=instr))

    def _issue_branch(self, cpu: Cpu, instr: IBranch) -> None:
        taken = bool(cpu.lfsr.next_bit())
        rec = DynRecord(instr=instr, taken=taken)
        self._advance(cpu, cpu.pc, rec, skip=instr.skip if taken else 0)

    _HANDLERS = {
        ILoad: _issue_load,
        IStore: _issue_store,
        IBlockStore: _issue_block_store,
        IBlockLoad: _issue_block_load,
        IMembar: _issue_membar,
        ISwap: _issue_swap,
        ICas: _issue_cas,
        INonFaultingLoad: _issue_nonfaulting,
        IPrefetch: _issue_prefetch,
        IFlushCache: _issue_flush_cache,
        IFlushPipe: _issue_flush_pipe,
        IInterrupt: _issue_interrupt,
        IBranch: _issue_branch,
    }

    def _note_buffer_depth(self, pid: int) -> None:
        depth = len(self.buffers[pid])
        if depth > self.stats.buffer_highwater[pid]:
            self.stats.buffer_highwater[pid] = depth

    # ------------------------------------------------------------------
    # Monitors and observation
    # ------------------------------------------------------------------

    def _poll_monitor(self) -> None:
        for fault in self.faults:
            alarm = fault.monitor_alarm(self.tick)
            if alarm:
                self.monitor_alarms.append(alarm)
        if not self.config.enable_monitor:
            return
        # Real coherence monitor: every resident *clean* cached word must
        # match the coherent value — memory, or a dirty owner's copy in
        # write-back mode — unless some CPU still has it buffered.
        for pid, cache in enumerate(self.caches):
            for line in cache.resident_lines().values():
                for addr, value in line.words.items():
                    if addr in line.dirty_words:
                        continue  # legitimately ahead of memory
                    coherent = {self.memory.read(addr)}
                    if self.config.writeback:
                        for other_cache in self.caches:
                            owner_value = other_cache.dirty_value(addr)
                            if owner_value is not None:
                                coherent.add(owner_value)
                    if value not in coherent and not self._buffered(addr):
                        self.monitor_alarms.append(
                            f"coherence: P{pid} caches {value} at {addr:#x}, "
                            f"coherent value(s) {sorted(coherent)}"
                        )

    def _buffered(self, addr: int) -> bool:
        return any(b.forward(addr) is not None for b in self.buffers)

    def _observe(self, pid: int, rec: DynRecord) -> DynRecord:
        for fault in self.faults:
            rec = fault.corrupt_record(pid, rec)
        return rec
