"""Per-CPU FIFO store buffers with load forwarding.

The store buffer is what makes the machine TSO instead of SC: a store
becomes visible to its own CPU immediately (forwarding) but to the rest
of the system only when its entry drains to memory, so the CPU's later
loads can overtake its earlier stores in the global order — exactly the
one relaxation TSO permits (Sec. 2: "a load which succeeds a store in
program order may precede it in global order").

Each :class:`BufferedStore` entry carries *all* the words of one
architectural store (or one 8-byte chunk of a block store) and drains
atomically, preserving the single-access atomicity the architecture
requires for aligned accesses.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from functools import cached_property
from typing import Deque, Dict, FrozenSet, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class BufferedStore:
    """One pending store: the words it writes and a debug tag.

    ``cacheable=False`` marks a non-cacheable (ASI) store; the healthy
    machine drains all entries in FIFO order regardless, but the
    memory-controller fault models use the flag to race the cached and
    uncached write queues against each other (Sec. 5.1).
    """

    words: Tuple[Tuple[int, int], ...]  # (word address, value) pairs
    tag: str = ""
    cacheable: bool = True

    @cached_property
    def word_set(self) -> FrozenSet[int]:
        """The word addresses this entry writes, computed once per entry.

        The PSO eligibility scan intersects every entry's address set on
        every drain decision; caching here keeps that scan allocation-free
        after the first drain consults an entry.  (``cached_property``
        writes straight into ``__dict__``, which a frozen dataclass
        permits.)
        """
        return frozenset(addr for addr, _value in self.words)

    def value_for(self, addr: int) -> Optional[int]:
        """The value this entry writes to ``addr``, or None."""
        for waddr, value in self.words:
            if waddr == addr:
                return value
        return None


class StoreBuffer:
    """A bounded FIFO of :class:`BufferedStore` entries."""

    def __init__(self, capacity: int = 8) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._entries: Deque[BufferedStore] = deque()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        """True when another push would exceed capacity."""
        return len(self._entries) >= self.capacity

    @property
    def empty(self) -> bool:
        """True when nothing is pending."""
        return not self._entries

    def push(self, entry: BufferedStore) -> None:
        """Enqueue a store; caller must have drained if the buffer is full."""
        if self.full:
            raise OverflowError("store buffer full")
        self._entries.append(entry)

    def peek(self, index: int = 0) -> BufferedStore:
        """The entry at FIFO position ``index`` (0 = oldest) without removal."""
        return self._entries[index]

    def pop(self, index: int = 0) -> BufferedStore:
        """Remove and return the entry at FIFO position ``index``.

        The golden machine always pops index 0; fault models (memory
        controller queue reordering) may pop out of order.
        """
        if index == 0:
            return self._entries.popleft()
        entry = self._entries[index]
        del self._entries[index]
        return entry

    def swap(self, i: int, j: int) -> None:
        """Exchange two entries in place (StoreBufferReorderFault hook)."""
        self._entries[i], self._entries[j] = self._entries[j], self._entries[i]

    def forward(self, addr: int, newest_first: bool = True) -> Optional[int]:
        """The value the buffer would forward to a load of ``addr``.

        Scans from the newest entry by default (correct behaviour); the
        stale-forwarding fault scans oldest-first instead.
        """
        entries = reversed(self._entries) if newest_first else iter(self._entries)
        for entry in entries:
            value = entry.value_for(addr)
            if value is not None:
                return value
        return None

    def entries(self) -> List[BufferedStore]:
        """A snapshot list of the pending entries, oldest first."""
        return list(self._entries)

    def clear(self) -> None:
        """Drop every pending entry (machine reset between runs)."""
        self._entries.clear()
