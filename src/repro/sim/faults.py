"""Injectable microarchitectural bugs (the Sec. 5 bug catalog).

Each :class:`Fault` plugs into named hook points of
:class:`~repro.sim.machine.TsoMachine` and perturbs one mechanism with a
configured probability.  Every concrete fault reproduces the *mechanism*
of a bug class the paper reports:

===============================  ==========  =============================
Fault                            Unit        Paper reference
===============================  ==========  =============================
StoreBufferReorderFault          LSU         StoreStore violations
StaleForwardFault                LSU         load/store unit bypass bugs
AtomicityHoleFault               Pipe        Fig. 7 (early lock release)
MembarSkipFault                  Pipe        membar ordering bugs
LostDirtyBitFault                Caches      Fig. 6 (write-cache tag bug)
DroppedInvalidateFault           Caches      "prefetch cache dropped an
                                             invalidate ... stale data"
InterconnectDelayFault           Interconn.  in-flight invalidate windows
WritebackReorderFault            MemCntlr    "cacheable and non-cacheable
                                             stores ... ordering violated"
DroppedSpeculativeLoadFault      MemCntlr    "DRAM controller dropped a
                                             speculative load request"
TlbAliasFault                    TLB         translation corner cases
MonitorFalseAlarmFault           (roster)    Table 1 "monitor bugs"
TraceCorruptionFault             --          Table 1 "environment bugs"
===============================  ==========  =============================

Fault *class* (architecture / design / monitor / environment) is a
property of where the mistake was made, not of the mechanism, so rosters
(:mod:`repro.sim.cpus`) choose it per instance — e.g. CPU5's architecture
bugs use the same atomicity-hole mechanism a design bug would, just as
the paper's early-lock-release "optimization ... had been thought to be
valid" was an architecture-level mistake.

All faults are deterministic given the machine seed: each gets its own
``random.Random`` stream at attach time.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Tuple

from repro.sim import interconnect as ic
from repro.model.trace import DynRecord

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.machine import TsoMachine
    from repro.sim.storebuffer import StoreBuffer

#: Word-tuple type committed by a store: ((addr, value), ...).
Words = Tuple[Tuple[int, int], ...]


class FuncUnit(enum.Enum):
    """Functional units of Table 2."""

    PIPE = "Pipe"
    CACHES = "Caches"
    TLB = "TLB"
    LSU = "LSU"
    MEM_CNTLR = "Mem Cntlr"
    INTERCONNECT = "Interconnect"
    NONE = "-"


class BugClass(enum.Enum):
    """Bug classes of Table 1."""

    ARCHITECTURE = "Architecture"
    DESIGN = "Design"
    MONITOR = "Monitor"
    ENVIRONMENT = "Environment"


@dataclass
class FaultReport:
    """Post-run accounting for one fault instance."""

    name: str
    unit: FuncUnit
    bug_class: BugClass
    activations: int


class Fault:
    """Base fault: all hooks are benign no-ops.

    Subclasses override the hooks relevant to their mechanism and call
    :meth:`fire` to roll the trigger probability (which also counts
    activations).
    """

    #: Default functional unit; rosters may override per instance.
    default_unit = FuncUnit.NONE

    def __init__(
        self,
        rate: float = 0.1,
        unit: Optional[FuncUnit] = None,
        bug_class: BugClass = BugClass.DESIGN,
        name: Optional[str] = None,
    ) -> None:
        if not (0.0 <= rate <= 1.0):
            raise ValueError("rate must be in [0, 1]")
        self.rate = rate
        self.unit = unit or self.default_unit
        self.bug_class = bug_class
        self.name = name or type(self).__name__
        self.activations = 0
        self.rng = random.Random(0)
        self.machine: Optional["TsoMachine"] = None

    def attach(self, machine: "TsoMachine", seed: int) -> None:
        """Bind to a machine; gives the fault its own deterministic RNG."""
        self.machine = machine
        self.rng = random.Random(seed)
        self.activations = 0

    def fire(self) -> bool:
        """Roll the trigger; count and return True when the fault fires."""
        if self.rng.random() < self.rate:
            self.activations += 1
            return True
        return False

    def report(self) -> FaultReport:
        """Accounting snapshot for campaign triage."""
        return FaultReport(
            name=self.name, unit=self.unit, bug_class=self.bug_class,
            activations=self.activations,
        )

    # ------------------------------------------------------------------
    # Hook points (defaults = correct behaviour)
    # ------------------------------------------------------------------

    def on_commit(self, cpu: int, words: Words) -> Tuple[str, Words]:
        """Intercept a store becoming globally visible.

        Returns (action, words): action is ``commit`` (normal), ``drop``
        (store vanishes) or ``local`` (own cache only — lost dirty bit).
        """
        return "commit", words

    def invalidate_verdict(self, src: int, victim: int, addr: int) -> Tuple[str, int]:
        """Decide an invalidate delivery: (DELIVER/DROP/DELAY, delay_ticks)."""
        return ic.DELIVER, 0

    def translate_load(self, cpu: int, addr: int) -> int:
        """Translate a load's word address (TLB hook)."""
        return addr

    def skip_forwarding(self, cpu: int, addr: int) -> bool:
        """True to make a load ignore the store buffer (stale forward)."""
        return False

    def on_load_value(self, cpu: int, addr: int, value: int) -> int:
        """Perturb a memory-sourced load value (memory-controller hook)."""
        return value

    def on_buffer_push(self, cpu: int, buffer: "StoreBuffer") -> None:
        """Inspect/perturb the store buffer right after a push."""

    def pick_drain_index(self, cpu: int, buffer: "StoreBuffer") -> Optional[int]:
        """FIFO index to drain next, or None to leave the choice alone.

        Returning an index — *including 0* — overrides the machine's
        drain selection; None lets the scheduler policy decide.  A fault
        that wants to force the correct FIFO head must return 0, which is
        distinct from declining to intervene.
        """
        return None

    def membar_effective(self, cpu: int) -> bool:
        """False to silently skip a membar's buffer drain."""
        return True

    def atomic_window(self, cpu: int) -> bool:
        """True to split an atomic's read and write across ticks."""
        return False

    def corrupt_record(self, cpu: int, rec: DynRecord) -> DynRecord:
        """Perturb the *observed* trace (environment bugs)."""
        return rec

    def monitor_alarm(self, tick: int) -> Optional[str]:
        """A spurious runtime-checker alarm message, or None."""
        return None


# ---------------------------------------------------------------------------
# LSU
# ---------------------------------------------------------------------------


class StoreBufferReorderFault(Fault):
    """Occasionally swaps the two newest store-buffer entries.

    Mechanism for StoreStore violations: two stores of one CPU reach
    memory in the wrong order.
    """

    default_unit = FuncUnit.LSU

    def on_buffer_push(self, cpu: int, buffer: "StoreBuffer") -> None:
        if len(buffer) >= 2 and self.fire():
            buffer.swap(-1, -2)


class StaleForwardFault(Fault):
    """A load occasionally ignores its own store buffer.

    The CPU reads memory although a newer own store is still buffered —
    the load returns a value older than the processor's own last write,
    violating the Value axiom's own-store term.
    """

    default_unit = FuncUnit.LSU

    def skip_forwarding(self, cpu: int, addr: int) -> bool:
        return self.fire()


# ---------------------------------------------------------------------------
# Pipe
# ---------------------------------------------------------------------------


class AtomicityHoleFault(Fault):
    """Atomics occasionally release their lock between read and write.

    The paper's Fig. 7 root cause: "the lock for the atomic swap to be
    released early, before the store part of the swap was complete ...
    opened a window for another store to sneak in."
    """

    default_unit = FuncUnit.PIPE

    def atomic_window(self, cpu: int) -> bool:
        return self.fire()


class MembarSkipFault(Fault):
    """A membar occasionally fails to drain the store buffer."""

    default_unit = FuncUnit.PIPE

    def membar_effective(self, cpu: int) -> bool:
        return not self.fire()


# ---------------------------------------------------------------------------
# Caches
# ---------------------------------------------------------------------------


class LostDirtyBitFault(Fault):
    """A commit updates the write cache but the dirty tag write is lost.

    The Fig. 6 silicon bug: the store's data lands in the CPU's own cache
    (so its own loads briefly see it) but never reaches memory, and the
    line is silently replaced after a few uses — "the data update being
    lost when the line was later replaced in the write cache".
    """

    default_unit = FuncUnit.CACHES

    def __init__(self, rate: float = 0.05, ttl: int = 3, **kwargs) -> None:
        super().__init__(rate=rate, **kwargs)
        self.ttl = ttl

    def on_commit(self, cpu: int, words: Words) -> Tuple[str, Words]:
        if self.fire():
            return "local", words
        return "commit", words


class DroppedInvalidateFault(Fault):
    """An invalidate to a CPU holding the line is occasionally dropped.

    The Sec. 5.1 bug: "a prefetch cache dropped an invalidate request,
    and later returned stale data to the pipeline."
    """

    default_unit = FuncUnit.CACHES

    def invalidate_verdict(self, src: int, victim: int, addr: int) -> Tuple[str, int]:
        if self.fire():
            return ic.DROP, 0
        return ic.DELIVER, 0


# ---------------------------------------------------------------------------
# Interconnect
# ---------------------------------------------------------------------------


class InterconnectDelayFault(Fault):
    """Invalidates are occasionally delivered several ticks late.

    Models in-flight invalidate windows on the system bus: a store is in
    memory (so some CPUs see it) while another CPU still reads its stale
    cached copy — different observers disagree on store order.
    """

    default_unit = FuncUnit.INTERCONNECT

    def __init__(self, rate: float = 0.1, max_delay: int = 24, **kwargs) -> None:
        super().__init__(rate=rate, **kwargs)
        self.max_delay = max_delay

    def invalidate_verdict(self, src: int, victim: int, addr: int) -> Tuple[str, int]:
        if self.fire():
            return ic.DELAY, self.rng.randint(2, self.max_delay)
        return ic.DELIVER, 0


# ---------------------------------------------------------------------------
# Memory controller
# ---------------------------------------------------------------------------


class WritebackReorderFault(Fault):
    """The write queue occasionally drains out of FIFO order.

    Models the Sec. 5.1 bug where "cacheable and non-cacheable stores
    went through different write queues; in some cases, the ordering
    between these queues was violated."  When the buffer holds a mix of
    cacheable and non-cacheable entries, the fault preferentially lets
    the *other* queue's head overtake (the literal mechanism); with a
    homogeneous buffer it falls back to a plain adjacent reorder.
    """

    default_unit = FuncUnit.MEM_CNTLR

    def pick_drain_index(self, cpu: int, buffer: "StoreBuffer") -> Optional[int]:
        if len(buffer) < 2 or not self.fire():
            return None
        head_cacheable = buffer.peek(0).cacheable
        for index in range(1, len(buffer)):
            if buffer.peek(index).cacheable != head_cacheable:
                return index  # the other write queue wins the race
        return 1


class DroppedSpeculativeLoadFault(Fault):
    """A load occasionally returns the word's just-overwritten value.

    Models the Sec. 5.1 bug: "the DRAM controller dropped a speculative
    load request due to a buffer full condition, leading to data
    corruption later" — the stale speculative data is used anyway.
    """

    default_unit = FuncUnit.MEM_CNTLR

    def on_load_value(self, cpu: int, addr: int, value: int) -> int:
        if self.machine is not None and self.fire():
            return self.machine.memory.previous_value(addr)
        return value


# ---------------------------------------------------------------------------
# TLB
# ---------------------------------------------------------------------------


class TlbAliasFault(Fault):
    """A load's address occasionally translates to the wrong shared word.

    The load returns data belonging to another location — typically an
    unmapped (address, value) pair, which the analysis flags at the
    outset (Sec. 4).
    """

    default_unit = FuncUnit.TLB

    def translate_load(self, cpu: int, addr: int) -> int:
        machine = self.machine
        if machine is None or len(machine.shared_words) < 2:
            return addr
        if addr in machine.shared_word_set and self.fire():
            choices = [w for w in machine.shared_words if w != addr]
            return self.rng.choice(choices)
        return addr


# ---------------------------------------------------------------------------
# Monitor / environment (Table 1's non-hardware bug classes)
# ---------------------------------------------------------------------------


class MonitorFalseAlarmFault(Fault):
    """A bug in a runtime checker: raises a spurious alarm.

    The design under test is fine; the simulation-environment monitor
    mis-fires.  Campaign triage recognises the bug when the alarm fires
    on a run whose TSOtool analysis passes.
    """

    def __init__(self, rate: float = 0.2, **kwargs) -> None:
        kwargs.setdefault("bug_class", BugClass.MONITOR)
        super().__init__(rate=rate, **kwargs)
        self._alarmed = False

    def attach(self, machine: "TsoMachine", seed: int) -> None:
        super().attach(machine, seed)
        self._alarmed = False

    def monitor_alarm(self, tick: int) -> Optional[str]:
        if not self._alarmed and self.fire():
            self._alarmed = True
            return (
                f"{self.name}: coherence monitor raised a spurious "
                f"mismatch alarm at tick {tick}"
            )
        return None


class TraceCorruptionFault(Fault):
    """The result-observation path corrupts a recorded load value.

    The hardware behaved correctly; the environment's trace is wrong.
    Campaign triage recognises the bug when the *observed* trace fails
    analysis while the machine's true trace passes.
    """

    def __init__(self, rate: float = 0.02, **kwargs) -> None:
        kwargs.setdefault("bug_class", BugClass.ENVIRONMENT)
        kwargs.setdefault("unit", FuncUnit.NONE)
        super().__init__(rate=rate, **kwargs)

    def corrupt_record(self, cpu: int, rec: DynRecord) -> DynRecord:
        if rec.loaded and self.fire():
            loaded = list(rec.loaded)
            idx = self.rng.randrange(len(loaded))
            loaded[idx] ^= 0x40000000  # a value nothing ever stored
            return rec.with_loaded(loaded)
        return rec


class HangFault(Fault):
    """Deliberately wedges the machine on its first load (test scaffolding).

    Models a hardware hang / livelock: the simulation never completes,
    so the run can only end via the campaign pool's per-task timeout.
    Used by the timeout-injection tests; never part of a CPU roster and
    not a paper bug class.  The hang ignores ``rate`` — it is
    unconditional, so behaviour does not depend on RNG state.
    """

    default_unit = FuncUnit.NONE

    def translate_load(self, cpu: int, addr: int) -> int:
        import time as _time

        while True:  # pragma: no cover - only ever killed from outside
            _time.sleep(0.05)


#: Mechanisms by functional unit, used by rosters to pick a mechanism for
#: a bug of a given unit.
MECHANISMS_BY_UNIT = {
    FuncUnit.PIPE: (AtomicityHoleFault, MembarSkipFault),
    FuncUnit.CACHES: (LostDirtyBitFault, DroppedInvalidateFault),
    FuncUnit.TLB: (TlbAliasFault,),
    FuncUnit.LSU: (StoreBufferReorderFault, StaleForwardFault),
    FuncUnit.MEM_CNTLR: (WritebackReorderFault, DroppedSpeculativeLoadFault),
    FuncUnit.INTERCONNECT: (InterconnectDelayFault,),
}
