"""The six synthetic CPU configurations behind Tables 1 and 2.

The paper deployed TSOtool on six SPARC processors and reports the bugs
found, classified by bug class (Table 1: architecture / design / monitor
/ environment) and by functional unit (Table 2: Pipe / Caches / TLB /
LSU / Mem Cntlr / Interconnect).  Real Sun RTL is unavailable, so each
CPU here is a *bug roster*: a list of seeded faults whose class and unit
marginals reproduce the paper's two tables exactly (see DESIGN.md).

Two reconciliation notes, derived from the paper's own numbers:

* Table 2 includes monitor bugs (per-CPU sums only match when they are
  counted) but excludes the 5 environment bugs, which have no hardware
  unit.
* CPU5 and CPU6 have respectively 2 and 5 more bugs in Table 1 than in
  Table 2; those bugs are modelled with ``FuncUnit.NONE`` — consistent
  with the paper's remark that "most of these bugs involved complex
  interaction between multiple functional units".

CPU1–CPU4 are "derivative processors ... changes and enhancements in
cache hierarchy, memory controller and bus interface" (no architecture
bugs, units concentrated in Caches/MemCntlr/Interconnect); CPU5 and CPU6
are "completely new designs" (architecture bugs, plus TLB/LSU/Pipe
spread), which the rosters mirror.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Type

from repro.sim.faults import (
    AtomicityHoleFault,
    BugClass,
    DroppedInvalidateFault,
    DroppedSpeculativeLoadFault,
    Fault,
    FuncUnit,
    InterconnectDelayFault,
    LostDirtyBitFault,
    MembarSkipFault,
    MonitorFalseAlarmFault,
    StaleForwardFault,
    StoreBufferReorderFault,
    TlbAliasFault,
    TraceCorruptionFault,
    WritebackReorderFault,
)

#: Default mechanism rotation per unit for design/architecture bugs.
_HARDWARE_MECHANISMS: Dict[FuncUnit, Tuple[Type[Fault], ...]] = {
    FuncUnit.PIPE: (AtomicityHoleFault, MembarSkipFault),
    FuncUnit.CACHES: (LostDirtyBitFault, DroppedInvalidateFault),
    FuncUnit.TLB: (TlbAliasFault,),
    FuncUnit.LSU: (StoreBufferReorderFault, StaleForwardFault),
    FuncUnit.MEM_CNTLR: (WritebackReorderFault, DroppedSpeculativeLoadFault),
    FuncUnit.INTERCONNECT: (InterconnectDelayFault,),
    # "Complex interaction between multiple functional units": bugs that
    # cannot be pinned on one unit still need a mechanism to fire.
    FuncUnit.NONE: (MembarSkipFault, AtomicityHoleFault, StaleForwardFault),
}

#: Default trigger rates per mechanism, tuned so a short campaign finds
#: each bug within a handful of tests (see tests/sim/test_fault_detection.py).
_RATES: Dict[Type[Fault], float] = {
    AtomicityHoleFault: 0.8,
    MembarSkipFault: 0.9,
    LostDirtyBitFault: 0.25,
    DroppedInvalidateFault: 0.5,
    TlbAliasFault: 0.08,
    StoreBufferReorderFault: 0.6,
    StaleForwardFault: 0.25,
    WritebackReorderFault: 0.6,
    DroppedSpeculativeLoadFault: 0.15,
    InterconnectDelayFault: 0.7,
    MonitorFalseAlarmFault: 0.05,
    TraceCorruptionFault: 0.03,
}


@dataclass(frozen=True)
class BugSpec:
    """One seeded bug: identity plus the fault mechanism that models it."""

    name: str
    mechanism: Type[Fault]
    unit: FuncUnit
    bug_class: BugClass
    rate: Optional[float] = None

    def instantiate(self) -> Fault:
        """Create a fresh fault instance for one machine run."""
        rate = self.rate if self.rate is not None else _RATES[self.mechanism]
        return self.mechanism(
            rate=rate, unit=self.unit, bug_class=self.bug_class, name=self.name
        )


@dataclass(frozen=True)
class CpuConfig:
    """A synthetic processor: a name, a pedigree, and its bug roster."""

    name: str
    description: str
    bugs: Tuple[BugSpec, ...]

    def class_counts(self) -> Dict[BugClass, int]:
        """Bug counts by class — one row of Table 1."""
        counts = {cls: 0 for cls in BugClass}
        for bug in self.bugs:
            counts[bug.bug_class] += 1
        return counts

    def unit_counts(self) -> Dict[FuncUnit, int]:
        """Bug counts by unit (environment bugs excluded) — Table 2 row."""
        counts = {unit: 0 for unit in FuncUnit if unit != FuncUnit.NONE}
        for bug in self.bugs:
            if bug.bug_class == BugClass.ENVIRONMENT or bug.unit == FuncUnit.NONE:
                continue
            counts[bug.unit] += 1
        return counts


def _roster(cpu: str, entries: List[Tuple[BugClass, FuncUnit, int]]) -> Tuple[BugSpec, ...]:
    """Expand (class, unit, count) triples into named BugSpecs.

    Hardware bugs rotate through their unit's mechanisms; monitor bugs
    use the spurious-alarm mechanism; environment bugs use trace
    corruption.
    """
    specs: List[BugSpec] = []
    rotations: Dict[FuncUnit, "itertools.cycle"] = {}
    serial = itertools.count(1)
    for bug_class, unit, count in entries:
        for _ in range(count):
            n = next(serial)
            name = f"{cpu}-bug{n:02d}-{bug_class.value.lower()}"
            if bug_class == BugClass.MONITOR:
                mechanism: Type[Fault] = MonitorFalseAlarmFault
            elif bug_class == BugClass.ENVIRONMENT:
                mechanism = TraceCorruptionFault
            else:
                if unit not in rotations:
                    rotations[unit] = itertools.cycle(_HARDWARE_MECHANISMS[unit])
                mechanism = next(rotations[unit])
            specs.append(
                BugSpec(name=name, mechanism=mechanism, unit=unit, bug_class=bug_class)
            )
    return tuple(specs)


_A = BugClass.ARCHITECTURE
_D = BugClass.DESIGN
_M = BugClass.MONITOR
_E = BugClass.ENVIRONMENT
_U = FuncUnit

#: The six processors.  Per-CPU marginals reproduce Table 1 (classes)
#: and Table 2 (units) of the paper exactly; see the module docstring
#: for how the two tables reconcile.
CPU_CONFIGS: Tuple[CpuConfig, ...] = (
    CpuConfig(
        name="CPU1",
        description="derivative: cache-hierarchy refresh of a stable core",
        bugs=_roster("CPU1", [(_D, _U.CACHES, 3)]),
    ),
    CpuConfig(
        name="CPU2",
        description="derivative: new bus interface and memory controller",
        bugs=_roster(
            "CPU2",
            [
                (_D, _U.PIPE, 1),
                (_D, _U.CACHES, 2),
                (_D, _U.MEM_CNTLR, 1),
                (_M, _U.CACHES, 3),
            ],
        ),
    ),
    CpuConfig(
        name="CPU3",
        description="derivative: large shared-cache redesign",
        bugs=_roster(
            "CPU3",
            [
                (_D, _U.CACHES, 9),
                (_D, _U.INTERCONNECT, 2),
                (_M, _U.CACHES, 8),
                (_E, _U.NONE, 5),
            ],
        ),
    ),
    CpuConfig(
        name="CPU4",
        description="derivative: memory controller and interconnect overhaul",
        bugs=_roster(
            "CPU4",
            [
                (_D, _U.CACHES, 4),
                (_D, _U.MEM_CNTLR, 8),
                (_D, _U.INTERCONNECT, 5),
                (_M, _U.CACHES, 4),
                (_M, _U.INTERCONNECT, 4),
            ],
        ),
    ),
    CpuConfig(
        name="CPU5",
        description="new design: aggressive speculative memory pipeline",
        bugs=_roster(
            "CPU5",
            [
                (_A, _U.PIPE, 2),
                (_D, _U.PIPE, 1),
                (_D, _U.CACHES, 8),
                (_D, _U.TLB, 6),
                (_D, _U.LSU, 4),
                (_D, _U.INTERCONNECT, 1),
                (_M, _U.CACHES, 3),
                (_M, _U.NONE, 2),
            ],
        ),
    ),
    CpuConfig(
        name="CPU6",
        description="new design: chip-multiprocessing load/store unit",
        bugs=_roster(
            "CPU6",
            [
                (_A, _U.LSU, 3),
                (_A, _U.CACHES, 2),
                (_D, _U.LSU, 7),
                (_D, _U.CACHES, 3),
                (_D, _U.NONE, 4),
                (_M, _U.NONE, 1),
            ],
        ),
    ),
)


def cpu_by_name(name: str) -> CpuConfig:
    """Look up one of the six CPU configurations by name."""
    for cpu in CPU_CONFIGS:
        if cpu.name == name:
            return cpu
    raise KeyError(f"no CPU configuration named {name!r}")
