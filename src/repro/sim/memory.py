"""Word-addressed global memory.

The single point of global visibility in the machine: a store is "part of
the global memory order" exactly when it is written here (plus the
accompanying invalidation broadcast, which the golden machine performs in
the same step — see :mod:`repro.sim.machine`).

Also tracks, per word, the value that the most recent write replaced;
the :class:`~repro.sim.faults.DroppedSpeculativeLoadFault` uses it to
model the Sec. 5.1 DRAM-controller bug ("dropped a speculative load
request due to a buffer full condition, leading to data corruption") by
returning freshly-overwritten data.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set

from repro.model.ops import WORD_SIZE


class Memory:
    """Flat word-granular memory with page-validity bookkeeping."""

    #: Page size for validity checks (non-faulting loads).
    PAGE = 0x1000

    def __init__(self, initial: Optional[Dict[int, int]] = None) -> None:
        """Create memory; ``initial`` maps word addresses to start values."""
        self._words: Dict[int, int] = dict(initial or {})
        self._previous: Dict[int, int] = {}
        self._valid_pages: Set[int] = {
            addr // self.PAGE for addr in self._words
        }

    def register_valid(self, addresses: Iterable[int]) -> None:
        """Mark the pages containing ``addresses`` as mapped (non-faulting)."""
        for addr in addresses:
            self._valid_pages.add(addr // self.PAGE)

    def is_valid(self, addr: int) -> bool:
        """Whether the page containing ``addr`` is mapped."""
        return addr // self.PAGE in self._valid_pages

    def read(self, addr: int) -> int:
        """Read the word at ``addr`` (0 if never written)."""
        if addr % WORD_SIZE:
            raise ValueError(f"unaligned word read at {addr:#x}")
        return self._words.get(addr, 0)

    def write(self, addr: int, value: int) -> None:
        """Write the word at ``addr``, remembering the replaced value."""
        if addr % WORD_SIZE:
            raise ValueError(f"unaligned word write at {addr:#x}")
        self._previous[addr] = self._words.get(addr, 0)
        self._words[addr] = value
        self._valid_pages.add(addr // self.PAGE)

    def previous_value(self, addr: int) -> int:
        """The value the last write to ``addr`` replaced (0 if none)."""
        return self._previous.get(addr, self._words.get(addr, 0))

    def snapshot(self) -> Dict[int, int]:
        """A copy of the current contents (for tests and debug)."""
        return dict(self._words)
