"""Invalidation broadcast between CPUs.

In the golden machine a commit's invalidations are delivered in the same
simulation step, making global visibility atomic (which is what the TSO
axioms mean by a store being "effectively visible to all processors").
Fault models can intercept delivery per destination: drop an invalidate
entirely (the Sec. 5.1 prefetch-cache bug) or delay it a bounded number
of steps (in-flight invalidates, the window behind the Fig. 6 bug).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sched.policy import SchedulePolicy

#: Verdict a fault returns for one invalidate delivery.
DELIVER = "deliver"
DROP = "drop"
DELAY = "delay"


@dataclass
class PendingInvalidate:
    """An invalidate in flight: deliver to ``victim`` at ``due_tick``."""

    due_tick: int
    victim: int
    addr: int


class Interconnect:
    """Broadcasts invalidations, honouring fault drop/delay verdicts."""

    def __init__(
        self,
        ncpus: int,
        policy: Optional["SchedulePolicy"] = None,
        jitter: int = 0,
    ) -> None:
        """Args:
            ncpus: number of CPUs on the bus.
            policy: schedule policy consulted for delivery jitter.  Only
                used when ``jitter > 0``, so the default healthy machine
                makes no extra policy calls (keeping the random decision
                stream — and thus old seeds — stable).
            jitter: maximum extra delivery delay, in ticks, the policy
                may inject on an otherwise immediate DELIVER verdict.
        """
        self.ncpus = ncpus
        self.policy = policy
        self.jitter = jitter
        self.pending: List[PendingInvalidate] = []

    def broadcast(
        self,
        src: int,
        addr: int,
        tick: int,
        deliver: Callable[[int, int], None],
        verdict: Callable[[int, int, int], Tuple[str, int]],
    ) -> None:
        """Invalidate ``addr``'s line in every other CPU's cache.

        Args:
            src: committing CPU (skipped).
            addr: a word address inside the line being invalidated.
            tick: current simulation tick.
            deliver: callback ``(victim, addr)`` that performs the
                invalidation.
            verdict: fault hook ``(src, victim, addr) -> (action, delay)``
                where action is DELIVER, DROP or DELAY.
        """
        for victim in range(self.ncpus):
            if victim == src:
                continue
            action, delay = verdict(src, victim, addr)
            if action == DELIVER and self.jitter > 0 and self.policy is not None:
                # The policy may stretch an immediate delivery into a
                # short in-flight window — a legal reordering axis the
                # exploration policies can probe without a fault model.
                extra = self.policy.pick_delay(0, self.jitter)
                if extra > 0:
                    action, delay = DELAY, extra
            if action == DELIVER:
                deliver(victim, addr)
            elif action == DELAY:
                self.pending.append(
                    PendingInvalidate(due_tick=tick + delay, victim=victim, addr=addr)
                )
            # DROP: nothing — the victim keeps its stale line.

    def deliver_due(self, tick: int, deliver: Callable[[int, int], None]) -> int:
        """Deliver every pending invalidate whose time has come.

        Returns the number delivered.
        """
        due = [p for p in self.pending if p.due_tick <= tick]
        if not due:
            return 0
        self.pending = [p for p in self.pending if p.due_tick > tick]
        for item in due:
            deliver(item.victim, item.addr)
        return len(due)

    def flush(self, deliver: Callable[[int, int], None]) -> None:
        """Deliver everything still in flight (end of run)."""
        for item in self.pending:
            deliver(item.victim, item.addr)
        self.pending.clear()
