"""Per-CPU architectural state.

Each :class:`Cpu` owns its program counter, its unique-store-value
counter (the paper's register-resident running counters, Sec. 3.1), its
software LFSR for branch randomization, and the dynamic records it has
produced so far.  All behaviour — the memory semantics — lives in
:class:`~repro.sim.machine.TsoMachine`; this class is deliberately just
state plus tiny helpers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.generator.lfsr import Lfsr
from repro.model.ops import Instr
from repro.model.program import Thread
from repro.model.trace import DynRecord


@dataclass
class Cpu:
    """One logical processor's state."""

    pid: int
    thread: Thread
    lfsr: Lfsr
    value_counter: int = 0
    pc: int = 0
    records: List[DynRecord] = field(default_factory=list)
    record_by_instr: Dict[int, DynRecord] = field(default_factory=dict)
    #: Set when another CPU sent an IPI; cleared after the serializing
    #: interrupt entry (a full store-buffer drain).
    pending_ipi: bool = False
    #: Line address of the most recent load (hardware-prefetch pattern
    #: detection); -1 before any load.
    last_load_line: int = -1

    @property
    def done(self) -> bool:
        """True once every instruction has issued (buffer may still drain)."""
        return self.pc >= len(self.thread)

    def current(self) -> Instr:
        """The next instruction to issue."""
        return self.thread.instrs[self.pc]

    def next_value(self) -> int:
        """A fresh globally-unique store value.

        Encodes the CPU id in the low byte and the per-CPU counter above
        it, so no two stores in a run (on any CPU) ever write the same
        value — the unique-store-value requirement of Sec. 3.1.  Values
        are always >= 256, so they never collide with small initial
        values like 0.
        """
        self.value_counter += 1
        return (self.value_counter << 8) | (self.pid + 1)

    def record(self, instr_index: int, rec: DynRecord) -> None:
        """Append a dynamic record and index it by instruction position."""
        self.records.append(rec)
        self.record_by_instr[instr_index] = rec
