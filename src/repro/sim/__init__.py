"""The machine substrate: an operational TSO multiprocessor simulator.

The paper ran its tests on SPARC silicon and RTL simulation; this
subpackage is the reproduction's stand-in (see DESIGN.md).  It executes
:class:`~repro.model.program.Program` objects under seeded random
interleaving and produces the :class:`~repro.model.trace.Execution`
traces the analysis consumes.

Architecture (one instance each per machine):

* :class:`~repro.sim.memory.Memory` — word-addressed global memory with
  page validity (for non-faulting loads) and last-overwritten-value
  tracking (for the stale-speculative-load fault).
* :class:`~repro.sim.storebuffer.StoreBuffer` — per-CPU FIFO write
  buffer with byte... word-accurate load forwarding; the component that
  makes the machine TSO rather than SC.
* :class:`~repro.sim.cache.CpuCache` — per-CPU line snapshots kept
  coherent by immediate invalidation in the golden machine; the faults
  of Sec. 5.1 (dropped invalidate, lost dirty bit) live here.
* :class:`~repro.sim.interconnect.Interconnect` — invalidation
  broadcast, instantaneous when healthy, delayable by faults.
* :class:`~repro.sim.cpu.Cpu` — per-CPU architectural state: program
  counter, unique-value counters, the Sec. 3.1 software LFSR.
* :class:`~repro.sim.machine.TsoMachine` — the scheduler and the
  commit/read paths, with every fault hook point.
* :mod:`~repro.sim.faults` — the injectable bug catalog.
* :mod:`~repro.sim.cpus` — the six synthetic CPU configurations whose
  bug rosters regenerate Tables 1 and 2.
"""

from repro.sim.machine import MachineConfig, TsoMachine
from repro.sim.memory import Memory
from repro.sim.storebuffer import BufferedStore, StoreBuffer
from repro.sim.cache import CpuCache
from repro.sim.interconnect import Interconnect

__all__ = [
    "MachineConfig",
    "TsoMachine",
    "Memory",
    "BufferedStore",
    "StoreBuffer",
    "CpuCache",
    "Interconnect",
]
