"""Per-CPU cache with line snapshots — the home of the Sec. 5.1 cache bugs.

The golden machine keeps these caches trivially coherent: every commit
invalidates the line in all other CPUs' caches in the same step, so a
cached word always equals memory and the cache is value-transparent.
Its purpose is to be a *mechanistic hook point*: the dropped-invalidate
fault leaves a stale line behind, the lost-dirty-bit fault updates a line
without updating memory, prefetches install lines, flushes drop them —
all observable through the normal load path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

#: Cache line size in bytes (matches the 64-byte block operations).
LINE_SIZE = 64


def line_of(addr: int) -> int:
    """The line-aligned base address containing ``addr``."""
    return addr - (addr % LINE_SIZE)


@dataclass
class CacheLine:
    """One resident line: sparse per-word snapshot plus fault bookkeeping.

    Attributes:
        words: word address -> snapshotted value.
        stale: marked by fault models when the snapshot is knowingly out
            of date (purely diagnostic; reads do not consult it).
        ttl: when >= 0, the line serves at most this many more reads
            before silently self-destructing — used by fault models to
            bound stale windows and to model silent replacement of a
            lost-dirty-bit line.
    """

    words: Dict[int, int] = field(default_factory=dict)
    stale: bool = False
    ttl: int = -1
    #: Write-back mode: the words of this line holding data newer than
    #: memory (the "modified" part of the line).  Dirtiness is tracked
    #: per word: a dirty line may also carry clean snapshot words whose
    #: memory may have advanced since — those must never be written back.
    dirty_words: Set[int] = field(default_factory=set)

    @property
    def dirty(self) -> bool:
        """True when any word of the line is newer than memory."""
        return bool(self.dirty_words)

    def dirty_items(self):
        """(addr, value) pairs that must reach memory on write-back."""
        return [(addr, self.words[addr]) for addr in sorted(self.dirty_words)]


class CpuCache:
    """A private cache: a dict of resident lines.

    ``capacity`` bounds the number of resident lines (0 = unbounded, the
    write-through default).  When a new line would exceed it, the oldest
    resident line is chosen as the victim; the machine performs the
    write-back of dirty victims (the cache itself has no memory access).
    """

    def __init__(self, capacity: int = 0) -> None:
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity = capacity
        self._lines: Dict[int, CacheLine] = {}

    def lookup(self, addr: int) -> Optional[int]:
        """The cached value of the word at ``addr``, if resident.

        Counts down a fault-set TTL and silently drops the line when it
        expires (the "replacement" that loses a dirty-bit-bug line).
        """
        line = self._lines.get(line_of(addr))
        if line is None or addr not in line.words:
            return None
        value = line.words[addr]
        if line.ttl >= 0:
            line.ttl -= 1
            if line.ttl <= 0:
                del self._lines[line_of(addr)]
        return value

    def install(self, addr: int, value: int, dirty: bool = False) -> None:
        """Record the word's value in its (possibly new) resident line."""
        line = self._lines.setdefault(line_of(addr), CacheLine())
        line.words[addr] = value
        if dirty:
            line.dirty_words.add(addr)

    def needs_eviction(self) -> bool:
        """True when over capacity (a victim must be evicted first)."""
        return self.capacity > 0 and len(self._lines) > self.capacity

    def evict_victim(self) -> Optional[tuple]:
        """Pop the oldest resident line; returns (line_addr, line) or None.

        The caller is responsible for writing back dirty victims.
        """
        if not self._lines:
            return None
        victim_addr = next(iter(self._lines))
        return victim_addr, self._lines.pop(victim_addr)

    def dirty_value(self, addr: int) -> Optional[int]:
        """The word's value if this cache holds it *dirty* (snooping)."""
        line = self._lines.get(line_of(addr))
        if line is not None and addr in line.dirty_words:
            return line.words[addr]
        return None

    def line(self, addr: int) -> Optional[CacheLine]:
        """The resident line containing ``addr``, if any."""
        return self._lines.get(line_of(addr))

    def invalidate(self, addr: int) -> bool:
        """Drop the line containing ``addr``; True if it was resident."""
        return self._lines.pop(line_of(addr), None) is not None

    def update_if_resident(self, addr: int, value: int) -> None:
        """Refresh a word only when its line is already resident."""
        line = self._lines.get(line_of(addr))
        if line is not None:
            line.words[addr] = value

    def resident_lines(self) -> Dict[int, CacheLine]:
        """All resident lines (for the coherence monitor)."""
        return self._lines

    def clear(self) -> None:
        """Drop everything (pipeline-level flush)."""
        self._lines.clear()
