"""repro — a full reproduction of TSOtool (Hangal et al., ISCA 2004).

TSOtool verifies a shared-memory multiprocessor's implementation of its
memory consistency model by running pseudo-random programs with data
races and checking the observed load values against the formal axioms
with a polynomial-time, sound-but-incomplete constraint-graph algorithm.

This package provides, end to end:

* the analysis algorithm (rules R1–R7, Fig. 2) in four agreeing
  engines — from the literal
  :class:`~repro.core.checker.BaselineChecker` to the incremental
  :class:`~repro.core.vc.VectorClockChecker` default (see
  ``docs/engines.md``) — plus the exponential complete procedure
  :func:`~repro.core.complete.complete_check`;
* the memory models TSO, SC and PSO as pluggable ordering policies;
* the pseudo-random racy test generator of Sec. 3.1;
* an operational TSO multiprocessor simulator with store buffers, caches
  and an injectable microarchitectural-bug catalog, standing in for the
  SPARC silicon the paper ran on;
* campaign and runtime harnesses that regenerate Tables 1–2 and
  Figures 8–9 of the paper.

Quickstart::

    import repro

    cfg = repro.GeneratorConfig(nprocs=4, ops_per_proc=100, shared_words=16)
    program = repro.generate_program(cfg, seed=1)
    execution = repro.TsoMachine(program, seed=1).run()
    result = repro.check(program, execution)
    assert result.ok
"""

from repro.core import (
    PSO,
    SC,
    TSO,
    BaselineChecker,
    CheckResult,
    ClosureChecker,
    CompleteResult,
    EdgeReason,
    KernelVectorChecker,
    MatrixChecker,
    MemoryModel,
    Violation,
    ViolationKind,
    check,
    check_execution,
    check_litmus,
    complete_check,
)
from repro.generator import GeneratorConfig, generate_program, LITMUS_LIBRARY
from repro.model import (
    Execution,
    Program,
    Thread,
    expand,
    parse_litmus,
)
from repro.sim import MachineConfig, TsoMachine
from repro.sim.faults import Fault, FaultReport
from repro.sim.cpus import CPU_CONFIGS
from repro.analysis.coverage import CoverageReport, measure_coverage
from repro.analysis.minimize import minimize_failure, render_minimized
from repro.emit import emit_sparc
from repro.generator.patterns import PATTERNS

__version__ = "1.0.0"

__all__ = [
    "TSO",
    "SC",
    "PSO",
    "MemoryModel",
    "BaselineChecker",
    "ClosureChecker",
    "CheckResult",
    "CompleteResult",
    "EdgeReason",
    "Violation",
    "ViolationKind",
    "check",
    "check_execution",
    "check_litmus",
    "complete_check",
    "GeneratorConfig",
    "generate_program",
    "LITMUS_LIBRARY",
    "Execution",
    "Program",
    "Thread",
    "expand",
    "parse_litmus",
    "MachineConfig",
    "TsoMachine",
    "Fault",
    "FaultReport",
    "CPU_CONFIGS",
    "MatrixChecker",
    "KernelVectorChecker",
    "CoverageReport",
    "measure_coverage",
    "minimize_failure",
    "render_minimized",
    "emit_sparc",
    "PATTERNS",
    "__version__",
]
