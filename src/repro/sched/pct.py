"""Probabilistic concurrency testing (PCT) as a schedule policy.

PCT (Burckhardt et al., "A Randomized Scheduler with Probabilistic
Guarantees of Finding Bugs") replaces uniform interleaving sampling with
a priority-based schedule: each processor gets a random priority, the
highest-priority runnable processor always runs, and at ``depth - 1``
random *priority-change points* during the run the currently running
processor is demoted below everything else.  A bug that needs ``d``
specific ordering constraints is then found with probability at least
``1 / (n * k^(d-1))`` — concentrating probability mass on the shallow
ordering bugs that dominate real memory-system errata, instead of
spreading it uniformly over the (astronomically many) interleavings.

Mapping onto this simulator: ``pick_cpu`` is the PCT scheduling
decision; drain-vs-issue, PSO drain choice and interconnect jitter are
not inter-processor ordering decisions, so they keep an ordinary seeded
coin (still fully deterministic given the policy seed).
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Sequence

from repro.sched.policy import SchedulePolicy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.machine import TsoMachine
    from repro.sim.storebuffer import StoreBuffer


class PctPolicy(SchedulePolicy):
    """Priority-based probabilistic concurrency testing.

    Args:
        seed: PRNG seed for priorities, change points, and the
            non-ordering coins.
        depth: the PCT bug-depth parameter ``d``; ``depth - 1`` priority
            change points are planted per run.  ``depth=1`` degenerates
            to a fixed random priority order.
    """

    name = "pct"

    def __init__(self, seed: int = 0, depth: int = 3) -> None:
        super().__init__()
        if depth < 1:
            raise ValueError("depth must be >= 1")
        self.seed = seed
        self.depth = depth
        self.rng = random.Random(seed)
        self._priorities: dict = {}
        self._change_points: set = set()
        self._steps = 0
        self._demotions = 0

    def bind(self, machine: "TsoMachine") -> None:
        super().bind(machine)
        nprocs = machine.program.nprocs
        # High random base priorities (d..d+n), distinct per processor.
        base = list(range(self.depth, self.depth + nprocs))
        self.rng.shuffle(base)
        self._priorities = {pid: base[pid] for pid in range(nprocs)}
        # Estimate the run length in scheduling steps: every instruction
        # issues once and every store also drains once; double it for
        # slack so change points land inside the run with high odds.
        total = sum(len(t) for t in machine.program.threads)
        horizon = max(2 * total, self.depth)
        self._change_points = set(
            self.rng.sample(range(1, horizon + 1), min(self.depth - 1, horizon))
        )
        self._steps = 0
        self._demotions = 0

    def pick_cpu(self, runnable: Sequence[int]) -> int:
        self._steps += 1
        pid = max(runnable, key=lambda p: self._priorities.get(p, 0))
        if self._steps in self._change_points:
            # Demote the running processor below every base priority;
            # successive demotions stack in order (0, 1, 2, ...), the
            # d-th lowest slot of the classic algorithm.
            self._priorities[pid] = self._demotions
            self._demotions += 1
        return pid

    def should_drain(self, pid: int, buffer: "StoreBuffer") -> bool:
        return self.rng.random() < self.drain_bias

    def pick_drain_index(self, eligible: Sequence[int]) -> int:
        return self.rng.choice(eligible)

    def pick_delay(self, lo: int, hi: int) -> int:
        return self.rng.randint(lo, hi)
