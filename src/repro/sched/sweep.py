"""Bounded systematic schedule exploration (DFS over choice points).

For small programs — litmus shapes especially — random sampling is
wasteful: the whole schedule space is enumerable.  :class:`SweepPolicy`
explores it with a *choice stack*, the cooperative-scheduler idiom of
the ``simsched`` explorer: every decision point (which CPU, drain or
issue, which PSO entry, what delivery delay) is a node with finitely
many alternatives; one run of the machine follows the stack's recorded
prefix and extends it with first choices; :meth:`SweepPolicy.advance`
then increments the deepest non-exhausted choice, depth-first, until the
whole tree is walked.

:func:`sweep_program` drives the policy over successive runs of one
program, deduplicates executions by outcome hash (many schedules are
reads-from equivalent — the insight stateless model checkers exploit),
and stops when the tree is exhausted or a configurable budget of
schedules runs out.  The acceptance bar: on a 2-thread store-buffering
litmus it must enumerate *all four* outcomes, including the TSO-only
``r1 = r2 = 0`` relaxed result that requires both loads to overtake both
buffered stores.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.core.result import SweepStats
from repro.sched.policy import SchedulePolicy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.model.program import Program
    from repro.model.trace import Execution
    from repro.sim.faults import Fault
    from repro.sim.machine import MachineConfig, TsoMachine
    from repro.sim.storebuffer import StoreBuffer


class ScheduleExhausted(RuntimeError):
    """Raised if a machine asks for a decision after the tree is done."""


class SweepPolicy(SchedulePolicy):
    """Depth-first systematic exploration over scheduler choice points.

    One policy object drives many machine runs: each
    :meth:`~repro.sched.policy.SchedulePolicy.bind` resets the cursor to
    the stack root, the run replays the recorded prefix and extends it
    with index-0 choices, and :meth:`advance` moves to the next schedule.
    Deterministic by construction — there is no randomness anywhere.
    """

    name = "sweep"

    def __init__(self) -> None:
        super().__init__()
        #: [chosen index, alternative count] per decision of the current
        #: schedule, in decision order.
        self.stack: List[List[int]] = []
        self._cursor = 0

    def bind(self, machine: "TsoMachine") -> None:
        super().bind(machine)
        self._cursor = 0

    def _choose(self, nalts: int) -> int:
        """Follow the stack prefix; extend with first choices past it."""
        if nalts < 1:
            raise ValueError("decision point with no alternatives")
        if self._cursor < len(self.stack):
            chosen, recorded = self.stack[self._cursor]
            if recorded != nalts:
                # The program/machine changed between runs; the stack no
                # longer describes this tree.
                raise ScheduleExhausted(
                    f"decision {self._cursor}: {nalts} alternatives now, "
                    f"{recorded} when the schedule was recorded"
                )
        else:
            self.stack.append([0, nalts])
            chosen = 0
        self._cursor += 1
        return chosen

    def advance(self) -> bool:
        """Step to the next unexplored schedule (depth-first).

        Returns False when the whole tree has been walked.  Must be
        called between runs; the next ``bind`` starts the new schedule.
        """
        del self.stack[self._cursor:]  # choices never reached this run
        while self.stack:
            self.stack[-1][0] += 1
            if self.stack[-1][0] < self.stack[-1][1]:
                return True
            self.stack.pop()
        return False

    # ------------------------------------------------------------------
    # Decision points
    # ------------------------------------------------------------------

    def pick_cpu(self, runnable: Sequence[int]) -> int:
        return runnable[self._choose(len(runnable))]

    def should_drain(self, pid: int, buffer: "StoreBuffer") -> bool:
        # Issue-first (index 0 = False): the first DFS path runs every
        # thread to completion before draining, which terminates fast.
        return bool(self._choose(2))

    def pick_drain_index(self, eligible: Sequence[int]) -> int:
        return eligible[self._choose(len(eligible))]

    def pick_delay(self, lo: int, hi: int) -> int:
        return lo + self._choose(hi - lo + 1)


@dataclass
class SweepOutcome:
    """One distinct execution outcome found by a sweep."""

    key: str
    execution: "Execution"
    count: int = 1
    #: The choice list (``[chosen, nalts]`` pairs) of the first schedule
    #: that produced this outcome — enough to re-derive it by DFS order.
    first_schedule: List[Tuple[int, int]] = field(default_factory=list)


@dataclass
class SweepResult:
    """Everything a systematic sweep of one program discovered."""

    outcomes: Dict[str, SweepOutcome]
    stats: SweepStats

    def executions(self) -> List["Execution"]:
        """The distinct executions, in first-discovery order."""
        return [o.execution for o in self.outcomes.values()]


def outcome_key(execution: "Execution") -> str:
    """A stable state hash of one execution's observable outcome."""
    return hashlib.sha256(execution.dump().encode()).hexdigest()[:16]


def sweep_program(
    program: "Program",
    config: Optional["MachineConfig"] = None,
    seed: int = 0,
    budget: int = 256,
    fault_specs: Sequence[object] = (),
) -> SweepResult:
    """Enumerate schedules of ``program`` up to ``budget`` executions.

    Args:
        program: the program to explore.
        config: machine tunables (``drain_bias`` is ignored by the sweep
            — drain-vs-issue is enumerated, not sampled).
        seed: machine seed; fixes store values, branch directions and
            fault RNG streams so the sweep varies *only* the schedule.
        budget: maximum number of executions to run; the result's
            ``stats.complete`` records whether the tree was finished.
        fault_specs: optional :class:`~repro.sim.cpus.BugSpec`-like
            objects (anything with ``instantiate()``); a fresh fault
            instance is created per run so activation state never leaks
            between schedules.

    Returns:
        A :class:`SweepResult` with outcome-deduplicated executions.
    """
    from repro.sim.machine import TsoMachine  # deferred: import cycle

    policy = SweepPolicy()
    outcomes: Dict[str, SweepOutcome] = {}
    stats = SweepStats(budget=budget)
    while stats.schedules_run < budget:
        faults = [spec.instantiate() for spec in fault_specs]
        machine = TsoMachine(
            program, seed=seed, config=config, faults=faults, policy=policy
        )
        execution = machine.run()
        stats.schedules_run += 1
        key = outcome_key(execution)
        if key in outcomes:
            outcomes[key].count += 1
        else:
            outcomes[key] = SweepOutcome(
                key=key,
                execution=execution,
                first_schedule=[tuple(c) for c in policy.stack],
            )
        if not policy.advance():
            stats.complete = True
            break
    stats.distinct_outcomes = len(outcomes)
    return SweepResult(outcomes=outcomes, stats=stats)
