"""Serializable scheduler specs: how configs name a schedule policy.

Policies themselves are stateful objects (a sweep carries its choice
stack, a replay its cursor), so configuration layers — `MachineConfig`,
`CampaignConfig`, the CLI, pickled pool tasks — carry a frozen
:class:`SchedSpec` instead and instantiate a fresh policy per run with
:func:`make_policy`.  The spec is hashable, picklable and JSON-friendly,
which is what lets a parallel campaign ship the chosen strategy to its
worker processes and stamp it into every recorded
:class:`~repro.sched.trace.ScheduleTrace`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.sched.pct import PctPolicy
from repro.sched.policy import RandomPolicy, SchedulePolicy
from repro.sched.sweep import SweepPolicy

#: Spec kinds instantiable per-run from a seed (replay needs a trace,
#: so it is constructed explicitly, never from a spec).
KINDS = ("random", "pct", "sweep")


@dataclass(frozen=True)
class SchedSpec:
    """A named schedule-exploration strategy plus its tuning knobs.

    Attributes:
        kind: one of :data:`KINDS`.
        pct_depth: PCT bug-depth parameter (``kind="pct"`` only).
        sweep_budget: schedule budget for systematic sweeps
            (``kind="sweep"`` only; enforced by the sweep driver).
    """

    kind: str = "random"
    pct_depth: int = 3
    sweep_budget: int = 256

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown scheduler kind {self.kind!r}")
        if self.pct_depth < 1:
            raise ValueError("pct_depth must be >= 1")
        if self.sweep_budget < 1:
            raise ValueError("sweep_budget must be >= 1")

    def describe(self) -> str:
        """Short human-readable form for reports and filenames."""
        if self.kind == "pct":
            return f"pct(depth={self.pct_depth})"
        if self.kind == "sweep":
            return f"sweep(budget={self.sweep_budget})"
        return "random"

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe representation (stored in ScheduleTrace meta)."""
        return {
            "kind": self.kind,
            "pct_depth": self.pct_depth,
            "sweep_budget": self.sweep_budget,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SchedSpec":
        """Inverse of :meth:`to_dict`."""
        return cls(
            kind=str(data.get("kind", "random")),
            pct_depth=int(data.get("pct_depth", 3)),  # type: ignore[arg-type]
            sweep_budget=int(data.get("sweep_budget", 256)),  # type: ignore[arg-type]
        )


def make_policy(spec: SchedSpec, seed: int = 0) -> SchedulePolicy:
    """Instantiate a fresh policy for one run.

    ``seed`` feeds the randomized strategies; a sweep is deterministic
    and ignores it.  Note a sweep policy must be *reused* across runs to
    make progress — drivers that explore (the CLI ``--sched sweep`` path,
    :func:`repro.sched.sweep.sweep_program`) hold onto one instance,
    while per-run callers get schedule #0 every time.
    """
    if spec.kind == "pct":
        return PctPolicy(seed=seed, depth=spec.pct_depth)
    if spec.kind == "sweep":
        return SweepPolicy()
    return RandomPolicy(seed=seed)
