"""repro.sched — pluggable schedule exploration for the TSO machine.

Owns every nondeterministic decision the simulator makes, behind the
:class:`~repro.sched.policy.SchedulePolicy` interface:

* :class:`~repro.sched.policy.RandomPolicy` — flat seeded randomness,
  bit-for-bit compatible with the pre-refactor inline scheduler;
* :class:`~repro.sched.pct.PctPolicy` — priority-based probabilistic
  concurrency testing (concentrates on low-depth ordering bugs);
* :class:`~repro.sched.sweep.SweepPolicy` — bounded systematic DFS for
  litmus-sized programs (:func:`~repro.sched.sweep.sweep_program`);
* :class:`~repro.sched.trace.RecordingPolicy` /
  :class:`~repro.sched.trace.ReplayPolicy` — exact record-and-replay
  via the :class:`~repro.sched.trace.ScheduleTrace` JSON format.

See ``docs/schedulers.md`` for when to use each.
"""

from repro.sched.pct import PctPolicy
from repro.sched.policy import RandomPolicy, SchedulePolicy
from repro.sched.spec import KINDS, SchedSpec, make_policy
from repro.sched.sweep import (
    SweepOutcome,
    SweepPolicy,
    SweepResult,
    outcome_key,
    sweep_program,
)
from repro.sched.trace import (
    RecordingPolicy,
    ReplayPolicy,
    ScheduleDivergence,
    ScheduleTrace,
)

__all__ = [
    "KINDS",
    "PctPolicy",
    "RandomPolicy",
    "RecordingPolicy",
    "ReplayPolicy",
    "SchedSpec",
    "ScheduleDivergence",
    "ScheduleTrace",
    "SchedulePolicy",
    "SweepOutcome",
    "SweepPolicy",
    "SweepResult",
    "make_policy",
    "outcome_key",
    "sweep_program",
]
