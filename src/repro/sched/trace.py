"""Schedule record-and-replay: exact re-execution of any hunt.

The paper's Sec. 5.2 selling point — a TSOtool failure has "a good
probability of being reproduced in the simulation environment" — rested
on seeded PRNGs.  A :class:`ScheduleTrace` makes reproduction *exact*
and *portable*: it records every decision a
:class:`~repro.sched.policy.SchedulePolicy` made during one run, as a
compact JSON document, so the run can be replayed choice-for-choice by
any process later — including a fault-detecting hunt found inside a
parallel campaign worker, replayed in a debugger on a laptop.

Format (``version`` 1)::

    {
      "version": 1,
      "policy": "random",            # the recorded policy's name
      "choices": [["c", 2], ["d", 1], ["i", 0], ["y", 3], ...],
      "meta": { ... }                # free-form reconstruction metadata
    }

Choice tags: ``c`` = pick_cpu (value: chosen pid), ``d`` = should_drain
(0/1), ``i`` = pick_drain_index (chosen buffer index), ``y`` =
pick_delay (ticks).  ``meta`` carries whatever the producer needs to
rebuild the run — the campaign stores the generator config, machine
seed, memory model and fault spec (see
:func:`repro.analysis.replay.replay_hunt`).

:class:`RecordingPolicy` wraps any policy and captures its decisions;
:class:`ReplayPolicy` feeds a trace back, raising
:class:`ScheduleDivergence` the moment the machine asks a different
question than the trace answered — a replay either reproduces the run
exactly or fails loudly, never silently drifts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Sequence, Tuple

from repro.sched.policy import SchedulePolicy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.machine import TsoMachine
    from repro.sim.storebuffer import StoreBuffer

#: Choice kind tags.
PICK_CPU = "c"
SHOULD_DRAIN = "d"
DRAIN_INDEX = "i"
DELAY = "y"

_TRACE_VERSION = 1


class ScheduleDivergence(RuntimeError):
    """A replayed run asked a question the trace did not answer."""


@dataclass
class ScheduleTrace:
    """The complete decision record of one machine run."""

    policy: str
    choices: List[Tuple[str, int]] = field(default_factory=list)
    meta: Dict[str, object] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.choices)

    def to_json(self) -> str:
        """Serialize to the compact v1 JSON document."""
        return json.dumps(
            {
                "version": _TRACE_VERSION,
                "policy": self.policy,
                "choices": [[k, v] for k, v in self.choices],
                "meta": self.meta,
            },
            separators=(",", ":"),
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "ScheduleTrace":
        """Parse a v1 JSON document (inverse of :meth:`to_json`)."""
        data = json.loads(text)
        version = data.get("version")
        if version != _TRACE_VERSION:
            raise ValueError(f"unsupported schedule-trace version {version!r}")
        choices = []
        for item in data.get("choices", []):
            kind, value = item
            if kind not in (PICK_CPU, SHOULD_DRAIN, DRAIN_INDEX, DELAY):
                raise ValueError(f"unknown choice tag {kind!r}")
            choices.append((str(kind), int(value)))
        return cls(
            policy=str(data.get("policy", "?")),
            choices=choices,
            meta=dict(data.get("meta", {})),
        )

    def save(self, path: str) -> None:
        """Write the JSON document to ``path``."""
        with open(path, "w") as fh:
            fh.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path: str) -> "ScheduleTrace":
        """Read a trace previously written by :meth:`save`."""
        with open(path) as fh:
            return cls.from_json(fh.read())


class RecordingPolicy(SchedulePolicy):
    """Wraps any policy and records every decision it makes."""

    name = "recording"

    def __init__(self, inner: SchedulePolicy) -> None:
        super().__init__()
        self.inner = inner
        self.trace = ScheduleTrace(policy=inner.name)

    def bind(self, machine: "TsoMachine") -> None:
        super().bind(machine)
        self.inner.bind(machine)
        self.trace = ScheduleTrace(policy=self.inner.name, meta=self.trace.meta)

    def pick_cpu(self, runnable: Sequence[int]) -> int:
        pid = self.inner.pick_cpu(runnable)
        self.trace.choices.append((PICK_CPU, pid))
        return pid

    def should_drain(self, pid: int, buffer: "StoreBuffer") -> bool:
        drain = self.inner.should_drain(pid, buffer)
        self.trace.choices.append((SHOULD_DRAIN, int(drain)))
        return drain

    def pick_drain_index(self, eligible: Sequence[int]) -> int:
        index = self.inner.pick_drain_index(eligible)
        self.trace.choices.append((DRAIN_INDEX, index))
        return index

    def pick_delay(self, lo: int, hi: int) -> int:
        delay = self.inner.pick_delay(lo, hi)
        self.trace.choices.append((DELAY, delay))
        return delay


class ReplayPolicy(SchedulePolicy):
    """Feeds a recorded :class:`ScheduleTrace` back to the machine.

    Replay is strict: every decision must match the recorded kind and be
    legal for the current machine state, else :class:`ScheduleDivergence`
    is raised.  With the same program, machine seed, config and faults as
    the recorded run, the replay reproduces the execution exactly.
    """

    name = "replay"

    def __init__(self, trace: ScheduleTrace) -> None:
        super().__init__()
        self.trace = trace
        self._cursor = 0

    def bind(self, machine: "TsoMachine") -> None:
        super().bind(machine)
        self._cursor = 0

    @property
    def exhausted(self) -> bool:
        """True once every recorded choice has been consumed."""
        return self._cursor >= len(self.trace.choices)

    def _next(self, kind: str) -> int:
        if self._cursor >= len(self.trace.choices):
            raise ScheduleDivergence(
                f"trace exhausted after {self._cursor} choices but the "
                f"machine asked for another {kind!r} decision"
            )
        recorded_kind, value = self.trace.choices[self._cursor]
        if recorded_kind != kind:
            raise ScheduleDivergence(
                f"choice {self._cursor}: machine asked {kind!r}, trace "
                f"recorded {recorded_kind!r}"
            )
        self._cursor += 1
        return value

    def pick_cpu(self, runnable: Sequence[int]) -> int:
        pid = self._next(PICK_CPU)
        if pid not in runnable:
            raise ScheduleDivergence(
                f"choice {self._cursor - 1}: recorded CPU {pid} is not "
                f"runnable (runnable: {list(runnable)})"
            )
        return pid

    def should_drain(self, pid: int, buffer: "StoreBuffer") -> bool:
        return bool(self._next(SHOULD_DRAIN))

    def pick_drain_index(self, eligible: Sequence[int]) -> int:
        index = self._next(DRAIN_INDEX)
        if index not in eligible:
            raise ScheduleDivergence(
                f"choice {self._cursor - 1}: recorded drain index {index} "
                f"is not eligible (eligible: {list(eligible)})"
            )
        return index

    def pick_delay(self, lo: int, hi: int) -> int:
        delay = self._next(DELAY)
        if not (lo <= delay <= hi):
            raise ScheduleDivergence(
                f"choice {self._cursor - 1}: recorded delay {delay} "
                f"outside [{lo}, {hi}]"
            )
        return delay
