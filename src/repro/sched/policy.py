"""The schedule-policy interface: every nondeterministic simulator choice.

TSOtool's bug-finding power comes from "intense data races" — but *which*
interleavings a run explores is a strategy question, and the literature
(PCT, stateless model checking over reads-from equivalence, lazy TSO
reachability) shows disciplined schedule search beats flat uniform
sampling.  This module owns the interface: a :class:`SchedulePolicy`
makes every decision the simulated machine would otherwise draw from an
inline PRNG:

* :meth:`~SchedulePolicy.pick_cpu` — which processor acts this tick;
* :meth:`~SchedulePolicy.should_drain` — drain a store-buffer entry
  instead of issuing the next instruction;
* :meth:`~SchedulePolicy.pick_drain_index` — which eligible entry drains
  (PSO mode, where non-FIFO drains are legal);
* :meth:`~SchedulePolicy.pick_delay` — invalidate-delivery jitter on the
  interconnect (active only with ``MachineConfig.invalidate_jitter``).

:class:`RandomPolicy` is the default and reproduces the pre-refactor
inline scheduler **bit-for-bit** for the same seed: it makes exactly the
same calls, in the same order, on one ``random.Random(seed)`` stream
(guarded by ``tests/sched/test_policy_golden.py``).

Concrete strategies live in sibling modules: :mod:`repro.sched.pct`
(priority-based probabilistic concurrency testing),
:mod:`repro.sched.sweep` (bounded systematic DFS), and
:mod:`repro.sched.trace` (record-and-replay).
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.machine import TsoMachine
    from repro.sim.storebuffer import StoreBuffer


class SchedulePolicy:
    """Base class: one object answers every scheduler question of a run.

    A policy is bound to a machine (:meth:`bind`) before its first
    decision; binding gives it access to machine tunables (``drain_bias``)
    and resets any per-run state, so one policy object can drive several
    consecutive machines (the sweep driver relies on this).
    """

    #: Short identifier used in specs, traces, and coverage reports.
    name = "abstract"

    def __init__(self) -> None:
        self.drain_bias = 0.35

    def bind(self, machine: "TsoMachine") -> None:
        """Attach to a machine about to run; reset per-run state."""
        self.drain_bias = machine.config.drain_bias

    # ------------------------------------------------------------------
    # Decision points
    # ------------------------------------------------------------------

    def pick_cpu(self, runnable: Sequence[int]) -> int:
        """Choose which processor id acts this tick (``runnable`` is
        non-empty, in ascending pid order)."""
        raise NotImplementedError

    def should_drain(self, pid: int, buffer: "StoreBuffer") -> bool:
        """Drain one of ``pid``'s buffered stores instead of issuing?"""
        raise NotImplementedError

    def pick_drain_index(self, eligible: Sequence[int]) -> int:
        """Choose which eligible buffer index drains (PSO mode).

        ``eligible`` is non-empty and ascending; every entry preserves
        per-address FIFO order, so any choice is architecturally legal.
        """
        raise NotImplementedError

    def pick_delay(self, lo: int, hi: int) -> int:
        """Invalidate-delivery delay in ticks, in ``[lo, hi]``.

        Consulted by the interconnect only when the machine runs with
        ``invalidate_jitter > 0``; 0 means same-tick delivery.
        """
        raise NotImplementedError


class RandomPolicy(SchedulePolicy):
    """Flat seeded randomness — the classic TSOtool scheduler.

    Bit-for-bit compatible with the pre-refactor inline scheduler: the
    machine used to call ``rng.choice(runnable)``, ``rng.random() <
    drain_bias`` and ``rng.choice(eligible)`` on one seeded stream, and
    this class makes the identical draws in the identical order.
    """

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        super().__init__()
        self.seed = seed
        self.rng = random.Random(seed)

    def pick_cpu(self, runnable: Sequence[int]) -> int:
        return self.rng.choice(runnable)

    def should_drain(self, pid: int, buffer: "StoreBuffer") -> bool:
        return self.rng.random() < self.drain_bias

    def pick_drain_index(self, eligible: Sequence[int]) -> int:
        return self.rng.choice(eligible)

    def pick_delay(self, lo: int, hi: int) -> int:
        return self.rng.randint(lo, hi)
