#!/usr/bin/env python3
"""The Sec. 3.4 what-if workflow on the standalone analysis interface.

When TSOtool flags a run, "users can edit this file and feed it back to
TSOtool via the analysis interface if they wish to make an educated
guess about which load result is incorrect and what the correct load
result should have been.  This 'what-if' analysis is often useful to
evaluate the correctness of other possible results."

This example stages that workflow against an *environment* bug (the
class behind Table 1's last column): the machine behaves perfectly, but
the observation path corrupts one recorded load value.

1. run tests on a machine with a trace-corruption fault until the
   observed trace fails analysis;
2. dump the failing trace in the editable text format;
3. play the analyst: the flagged load read a value nothing ever wrote,
   so try each value that *was* written to that address — one re-analysis
   per guess, exactly the paper's what-if loop;
4. report the guess that makes the outcome consistent, and confirm it
   against the machine's true trace.

Run:  python examples/what_if_analysis.py
"""

from repro import GeneratorConfig, TsoMachine, check, check_execution, generate_program
from repro.model.trace import Execution
from repro.sim.faults import TraceCorruptionFault


def _divergent_words(observed: Execution, true_execution: Execution) -> int:
    count = 0
    for obs_proc, true_proc in zip(observed.records, true_execution.records):
        for obs, true in zip(obs_proc, true_proc):
            if obs.loaded != true.loaded:
                count += sum(a != b for a, b in zip(obs.loaded, true.loaded))
    return count


def find_failing_run():
    """A run where exactly one observed word was corrupted (the single-
    culprit situation the what-if workflow is built for)."""
    config = GeneratorConfig(nprocs=4, ops_per_proc=50, shared_words=6)
    for seed in range(300):
        program = generate_program(config, seed=seed)
        machine = TsoMachine(
            program, seed=seed, faults=[TraceCorruptionFault(rate=0.005)]
        )
        observed = machine.run()
        result = check(program, observed)
        if not result.ok and _divergent_words(observed, machine.true_execution) == 1:
            return program, machine, observed, result
    raise SystemExit("no failing run found (unexpected)")


def locate_suspect(observed: Execution, true_execution: Execution):
    """Find the (pid, record, word) whose observation diverged."""
    for pid, (obs_proc, true_proc) in enumerate(
        zip(observed.records, true_execution.records)
    ):
        for idx, (obs, true) in enumerate(zip(obs_proc, true_proc)):
            if obs.loaded != true.loaded:
                for word, (a, b) in enumerate(zip(obs.loaded, true.loaded)):
                    if a != b:
                        return pid, idx, word
    raise SystemExit("no divergence found")


def main() -> None:
    program, machine, observed, result = find_failing_run()
    print("the observed trace fails analysis:")
    print(result.explain())

    print("\neditable trace format (excerpt):")
    print("\n".join(observed.dump().splitlines()[:5]))
    print("  ...")

    # The analyst does not have the true trace; we use it only at the
    # end to confirm the guess.  The suspect is located from the failure
    # itself here (the corrupted value is unmapped, so the violation
    # message names it).
    pid, idx, word = locate_suspect(observed, machine.true_execution)
    rec = observed.records[pid][idx]
    addr = rec.instr.addr + 4 * word
    bogus = rec.loaded[word]
    print(f"\nsuspect: P{pid} record {idx} word {word} "
          f"(address {addr:#x}) read {bogus}")

    # Candidate corrections: every value the trace shows being written
    # to that address, plus the initial value.
    candidates = [program.initial_value(addr)]
    for proc in observed.records:
        for r in proc:
            if r.stored is None:
                continue
            for w, value in enumerate(r.stored):
                if r.instr.addr + 4 * w == addr:
                    candidates.append(value)

    print(f"what-if loop over {len(candidates)} candidate values:")
    for candidate in candidates:
        records = [list(p) for p in observed.records]
        fixed = list(rec.loaded)
        fixed[word] = candidate
        records[pid][idx] = rec.with_loaded(fixed)
        verdict = check_execution(
            Execution(records=records),
            initial=program.initial,
            word_names=program.word_names,
        )
        mark = "CONSISTENT" if verdict.ok else "still fails"
        print(f"  {bogus} -> {candidate:<12d} {mark}")
        if verdict.ok:
            true_value = machine.true_execution.records[pid][idx].loaded[word]
            print(f"\nconfirmed: the machine really returned {true_value}; "
                  f"the guess {'matches' if candidate == true_value else 'differs'}.")
            print("verdict: environment bug — the hardware was innocent, the "
                  "observation path corrupted the result.")
            return
    print("no single-value edit explains the failure (deeper corruption).")


if __name__ == "__main__":
    main()
