#!/usr/bin/env python3
"""Close the Sec. 3.1 coverage loop: tune the generator, catch more bugs.

"Users can improve the quality of testcases generated using tools which
report test coverage."  This example does what such a user would do, but
automatically:

1. start from a test mix that is poor at atomic contention;
2. measure how often it catches a low-rate atomicity-window bug;
3. let the coverage-guided tuner reshape the mix toward the
   atomic-contention objective;
4. measure again — the detection rate should follow the coverage.

Run:  python examples/coverage_tuning.py
"""

from repro import GeneratorConfig, TsoMachine, check, generate_program
from repro.analysis.tuning import atomic_contention_objective, tune
from repro.generator.config import InstructionMix
from repro.sim.faults import AtomicityHoleFault

RUNS = 40
FAULT_RATE = 0.1


def detection_rate(config: GeneratorConfig) -> int:
    hits = 0
    for seed in range(RUNS):
        program = generate_program(config, seed=seed)
        machine = TsoMachine(
            program, seed=seed, faults=[AtomicityHoleFault(rate=FAULT_RATE)]
        )
        if not check(program, machine.run()).ok:
            hits += 1
    return hits


def main() -> None:
    # A deliberately atomics-poor starting mix.
    base = GeneratorConfig(
        nprocs=4, ops_per_proc=80, shared_words=8,
        mix=InstructionMix(load=40, store=40, swap=0.2, cas=0.2, membar=4),
    )
    before = detection_rate(base)
    print(f"baseline mix: {before}/{RUNS} runs catch the atomicity bug")

    print("tuning the generator toward atomic contention "
          "(coverage objective, no knowledge of the bug)...")
    result = tune(
        base=base, objective=atomic_contention_objective,
        rounds=100, seeds_per_eval=3, seed=11,
    )
    print(f"coverage score: {result.baseline_score:.1f} -> "
          f"{result.best_score:.1f} ({result.improvement:.1f}x) over "
          f"{result.evaluations} evaluations")
    mix = result.best_config.mix
    print(f"tuned weights: swap={mix.swap:g} cas={mix.cas:g} "
          f"load={mix.load:g} store={mix.store:g} "
          f"(shared_words={result.best_config.shared_words})")

    after = detection_rate(result.best_config)
    print(f"tuned mix:    {after}/{RUNS} runs catch the atomicity bug")
    if after > before:
        print("\ncoverage-guided tuning turned a blind test mix into an "
              "effective one — the Sec. 3.1 feedback loop, automated.")
    else:
        print("\nno improvement this time; try more tuning rounds.")


if __name__ == "__main__":
    main()
