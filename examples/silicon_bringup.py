#!/usr/bin/env python3
"""Replay a silicon bring-up: every bug live at once, fixed one by one.

The Table 1/2 campaign isolates bugs; real first silicon does not.  This
example attaches all of a CPU's hardware bugs to one machine, runs
generated tests until something fails, root-causes the failure by
re-running the same test with one suspect fault at a time, "fixes" the
culprit, and repeats — the workflow the paper's results section lived
through on six processors.

Watch the cadence: with 20+ live bugs nearly every test fails; as the
roster thins, failures take more tests to provoke — the long tail of
bring-up.

Run:  python examples/silicon_bringup.py [CPU1..CPU6]
"""

import sys

from repro.analysis.bringup import bringup
from repro.sim.cpus import cpu_by_name


def main() -> None:
    cpu_name = sys.argv[1] if len(sys.argv) > 1 else "CPU5"
    cpu = cpu_by_name(cpu_name)
    print(f"{cpu.name}: {cpu.description}")
    print("powering on first silicon (all hardware bugs live)...\n")

    log = bringup(cpu, max_tests=600)
    print(log.render())

    if not log.remaining:
        rate = log.fixed / max(log.total_tests, 1)
        print(f"\ntape-out-ready: roster clean; {rate:.2f} bugs fixed per "
              "test run — early silicon fails almost everything, exactly "
              "the paper's experience.")
    else:
        print(f"\nbudget exhausted with {len(log.remaining)} bug(s) still "
              "latent — schedule more bring-up time.")


if __name__ == "__main__":
    main()
