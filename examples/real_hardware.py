#!/usr/bin/env python3
"""Run a generated test on the machine you are sitting at.

x86 is a TSO architecture, so the paper's Step 2 ("run this test program
on a platform which supports the TSO memory model") can use your own
processor: this example generates a racy test, emits it as a C11/pthreads
program, compiles it with the host toolchain, runs it several times, and
checks every observed trace against the TSO axioms.

If your machine implements TSO correctly (it does), every run passes —
the interesting part is watching *different* interleavings stream through
the same checker the simulator uses.

Run:  python examples/real_hardware.py   (needs cc/gcc; x86 recommended)
"""

import platform
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

from repro import check_execution
from repro.analysis.coverage import measure_coverage
from repro.emit.c11 import c11_generator_config, emit_c11
from repro.generator.generator import generate_program
from repro.model.trace import Execution

RUNS = 5


def main() -> int:
    cc = shutil.which("cc") or shutil.which("gcc")
    if cc is None:
        print("no C compiler found; showing the emitted program instead:\n")
        program = generate_program(c11_generator_config(ops_per_proc=20), seed=1)
        print(emit_c11(program))
        return 0
    if platform.machine() not in ("x86_64", "AMD64", "i686", "i386"):
        print(f"warning: {platform.machine()} is not a TSO architecture — "
              "the checker may legitimately flag runs below.")

    config = c11_generator_config(nprocs=4, ops_per_proc=150, shared_words=6)
    program = generate_program(config, seed=42)

    with tempfile.TemporaryDirectory() as tmp:
        source = Path(tmp) / "test.c"
        binary = Path(tmp) / "test"
        source.write_text(emit_c11(program))
        print(f"emitted {len(source.read_text().splitlines())} lines of C; "
              f"compiling with {cc} ...")
        subprocess.run(
            [cc, "-O2", "-pthread", str(source), "-o", str(binary)], check=True
        )

        distinct = set()
        for run in range(1, RUNS + 1):
            output = subprocess.run(
                [str(binary)], check=True, capture_output=True, text=True
            ).stdout
            distinct.add(output)
            execution = Execution.load(output)
            result = check_execution(execution, initial=program.initial)
            verdict = "PASS" if result.ok else "FAIL"
            print(f"run {run}: {execution.total_records()} records -> "
                  f"{verdict} ({result.stats.edges} inferred-order edges)")
            if not result.ok:
                print(result.explain())
                return 1

        print(f"\n{len(distinct)} distinct interleavings over {RUNS} runs; "
              "all TSO-consistent.")
        report = measure_coverage(program, execution)
        print(f"last run exercised {report.race_pairs} racing processor "
              f"pairs over {report.words_touched} shared words.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
