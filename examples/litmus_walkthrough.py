#!/usr/bin/env python3
"""Walk through the paper's figures as litmus outcomes.

Replays Fig. 3 (the worked analysis example), Fig. 6 (the write-cache
silicon bug) and Fig. 7 (the CAS atomicity bug) through the checker and
prints the full chain of inference — the textual version of the paper's
clickable analysis-graph debug view (Sec. 3.4).  Also writes the Fig. 3
violation region as Graphviz DOT and as a clickable HTML debug report.

Run:  python examples/litmus_walkthrough.py
"""

import pathlib

from repro import check_litmus
from repro.core.htmlreport import render_html
from repro.generator.litmus import litmus_by_name


def main() -> None:
    for name in ("fig3", "fig6", "fig7"):
        case = litmus_by_name(name)
        print("=" * 72)
        print(f"{case.name}  ({case.paper_ref})")
        print(case.description)
        print()
        print(case.text.strip())
        print()
        result = check_litmus(case.text)
        print(result.explain())
        print()

    # The graphical debug artifacts for Fig. 3 (paper's Fig. 4).
    result = check_litmus(litmus_by_name("fig3").text)
    dot = pathlib.Path("fig3_violation.dot")
    dot.write_text(result.to_dot())
    page = pathlib.Path("fig3_violation.html")
    page.write_text(render_html(result, title="Fig. 3 violation"))
    print(f"wrote the Fig. 3 violation region to {dot} "
          "(render with: dot -Tpng fig3_violation.dot -o fig4.png)")
    print(f"wrote the clickable debug report to {page} "
          "(the Sec. 3.4 click-an-edge view)")


if __name__ == "__main__":
    main()
