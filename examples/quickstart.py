#!/usr/bin/env python3
"""Quickstart: the complete TSOtool flow in thirty lines.

1. Generate a pseudo-random multithreaded test with data races (Step 1).
2. Run it on the simulated TSO multiprocessor (Step 2 — on the paper's
   team this was real SPARC silicon or RTL simulation).
3. Check the observed load values against the TSO axioms (Step 3).

Then do it again with a seeded microarchitectural bug and watch the
checker explain the violation.

Run:  python examples/quickstart.py
"""

from repro import (
    GeneratorConfig,
    TsoMachine,
    check,
    generate_program,
)
from repro.sim.faults import StoreBufferReorderFault


def main() -> None:
    config = GeneratorConfig(nprocs=4, ops_per_proc=100, shared_words=8)
    program = generate_program(config, seed=2004)
    print(f"generated {config.nprocs} threads x {config.ops_per_proc} instructions "
          f"over {config.shared_words} shared words\n")

    # --- healthy machine -------------------------------------------------
    machine = TsoMachine(program, seed=2004)
    execution = machine.run()
    result = check(program, execution)
    print("healthy machine :", result.explain())

    # --- machine with a store-buffer reordering bug ----------------------
    for seed in range(2004, 2040):
        program = generate_program(config, seed=seed)
        buggy = TsoMachine(
            program, seed=seed, faults=[StoreBufferReorderFault(rate=0.6)]
        )
        result = check(program, buggy.run())
        if not result.ok:
            break
    print("\nbuggy machine   :")
    print(result.explain())


if __name__ == "__main__":
    main()
