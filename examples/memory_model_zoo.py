#!/usr/bin/env python3
"""One outcome, three memory models: SC vs TSO vs PSO.

The checker is parameterized by an ordering policy (Sec. 4: "the only
difference lies in the initial set of edges determined from program
order").  This example runs the classic litmus shapes under all three
models, prints the verdict matrix, and then demonstrates the
incompleteness boundary with the Fig. 5 pair: the polynomial checker
accepts the mirrored outcome that the exponential complete procedure
proves illegal.

Run:  python examples/memory_model_zoo.py
"""

from repro import PSO, SC, TSO, check_litmus, complete_check, expand, parse_litmus
from repro.generator.litmus import LITMUS_LIBRARY, litmus_by_name

MODELS = (SC, TSO, PSO)


def verdict_matrix() -> None:
    print(f"{'litmus case':20s}" + "".join(f"{m.name:>8s}" for m in MODELS))
    print("-" * (20 + 8 * len(MODELS)))
    for case in LITMUS_LIBRARY:
        cells = []
        for model in MODELS:
            result = check_litmus(case.text, model=model)
            cells.append("pass" if result.ok else "FAIL")
        print(f"{case.name:20s}" + "".join(f"{c:>8s}" for c in cells))
    print()
    print("reading the matrix: SC forbids store buffering (SB), TSO allows")
    print("it; PSO additionally allows store-store reordering (MP), and")
    print("all three enforce per-location coherence (CoRR).")


def incompleteness_boundary() -> None:
    print("\n" + "=" * 68)
    print("the incompleteness boundary (paper Fig. 5)")
    for name in ("fig5_base", "fig5_mirrored"):
        case = litmus_by_name(name)
        program, execution = parse_litmus(case.text)
        aprog = expand(
            execution, initial=program.initial, word_names=program.word_names
        )
        poly = check_litmus(case.text, model=TSO)
        truth = complete_check(aprog)
        print(f"\n{name}:")
        print(f"  polynomial checker : {'pass' if poly.ok else 'FAIL'}")
        print(f"  complete procedure : "
              f"{'valid' if truth.valid else 'INVALID'} "
              f"({truth.explored} search states)")
    print("\nthe mirrored outcome is a genuine TSO violation the polynomial")
    print("algorithm cannot see: catching it requires enforcing the Order")
    print("axiom, which is where the problem turns NP-complete (Sec. 4).")


if __name__ == "__main__":
    verdict_matrix()
    incompleteness_boundary()
