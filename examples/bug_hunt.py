#!/usr/bin/env python3
"""Hunt the seeded bugs of one synthetic CPU — a Table 1/2 row in action.

Takes one of the six CPU configurations (default CPU5, a "completely new
design" with architecture, design and monitor bugs across five units),
hunts every seeded bug with freshly generated racy tests, and prints the
per-bug story: which test found it, after how many attempts, and by
which triage rule.

Run:  python examples/bug_hunt.py [CPU1..CPU6]
"""

import sys

from repro.analysis.campaign import CampaignConfig, hunt_bug
from repro.sim.cpus import cpu_by_name


def main() -> None:
    cpu_name = sys.argv[1] if len(sys.argv) > 1 else "CPU5"
    cpu = cpu_by_name(cpu_name)
    config = CampaignConfig(tests_per_bug=12)

    print(f"{cpu.name}: {cpu.description}")
    print(f"hunting {len(cpu.bugs)} seeded bugs, "
          f"budget {config.tests_per_bug} tests each\n")

    found = 0
    for index, spec in enumerate(cpu.bugs):
        hunt = hunt_bug(spec, cpu.name, config, bug_index=index)
        status = "FOUND" if hunt.detected else "missed"
        found += hunt.detected
        detail = (
            f"test {hunt.tests_run} (seed {hunt.detected_on_seed}): {hunt.via}"
            if hunt.detected
            else f"survived {hunt.tests_run} tests"
        )
        print(
            f"  [{status}] {spec.name:28s} {spec.unit.value:12s} "
            f"{spec.mechanism.__name__:28s} {detail}"
        )

    print(f"\n{found}/{len(cpu.bugs)} bugs found")
    counts = cpu.class_counts()
    print("paper's Table 1 row for this CPU: "
          + ", ".join(f"{cls.value}={n}" for cls, n in counts.items() if n))


if __name__ == "__main__":
    main()
