#!/usr/bin/env python3
"""Shrink a big failing run to a litmus-sized core.

A randomly generated failing test carries hundreds of operations; the
bug write-ups in the paper's Sec. 5.1 are two to four operations per
processor.  This example bridges the two (the paper's "make TSOtool
failures easier to debug" future work): it finds a failing run on a
machine with a store-buffer reordering bug, delta-debugs the trace down
to its minimal failing core, and prints the core with the full chain of
inference.

Run:  python examples/minimize_failure.py
"""

from repro import GeneratorConfig, TsoMachine, check, generate_program
from repro.analysis.minimize import minimize_failure, render_minimized
from repro.core.result import ViolationKind
from repro.sim.faults import StoreBufferReorderFault


def find_failing_run():
    config = GeneratorConfig(nprocs=4, ops_per_proc=120, shared_words=6)
    for seed in range(100):
        program = generate_program(config, seed=seed)
        machine = TsoMachine(
            program, seed=seed, faults=[StoreBufferReorderFault(rate=0.4)]
        )
        execution = machine.run()
        result = check(program, execution)
        if not result.ok and result.violation.kind == ViolationKind.CYCLE:
            return program, execution, result
    raise SystemExit("no failing run found (unexpected)")


def main() -> None:
    program, execution, result = find_failing_run()
    print(f"failing run: {execution.total_records()} records; raw violation:")
    print(result.explain())
    print()

    minimized = minimize_failure(execution, initial=program.initial)
    print(render_minimized(minimized))
    print()
    shrink = execution.total_records() / max(minimized.minimized_records, 1)
    print(f"{shrink:.0f}x smaller — compare with the hand-written bug "
          "write-ups of Sec. 5.1.")


if __name__ == "__main__":
    main()
