"""Batched dispatch: campaign throughput at workers=4, batch=16 vs 1.

The unbatched pool pays a fixed cost per *task*: pickling the (spec,
config) tuple, two pipe messages, the parent's dispatch/collect
bookkeeping, and the worker's per-task telemetry flush.  With hunts
this small the parent's serial per-task work is the throughput ceiling
— four workers can finish hunts faster than one parent can feed them
one at a time.  Batching 16 hunts per task divides that ceiling by 16
and lets the hunts share warm state (one reset machine, reused checker
buffers) on top.

Records hunts/s and ops/s for batch in {1, 4, 16} under
``benchmarks/results/batched_throughput.txt``.  The >= 3x acceptance
bar assumes the workers genuinely run in parallel; on hosts with fewer
than 4 cores the parent is never the bottleneck (everything shares one
core), so — like ``test_parallel_speedup`` — the number is recorded
and a weaker monotonic floor is asserted, plus full digest parity.
"""

from __future__ import annotations

import dataclasses
import os
import time

from repro.analysis.campaign import CampaignConfig, run_campaign
from repro.generator.config import GeneratorConfig
from repro.service.store import hunt_digest
from repro.sim.cpus import CPU_CONFIGS

WORKERS = 4
BATCHES = (1, 4, 16)
#: Ten passes over the six rosters: 1060 tiny hunts, so per-task fixed
#: costs dominate per-hunt compute and pool startup amortizes away.
CPUS = list(CPU_CONFIGS) * 10
CONFIG = CampaignConfig(
    tests_per_bug=1,
    generator=GeneratorConfig(nprocs=2, ops_per_proc=2, shared_words=2),
)


def test_batched_throughput(record):
    cores = os.cpu_count() or 1
    runs = {}
    for batch in BATCHES:
        config = dataclasses.replace(CONFIG, batch=batch)
        start = time.perf_counter()
        result = run_campaign(CPUS, config, workers=WORKERS)
        wall = time.perf_counter() - start
        runs[batch] = (result, wall)

    # Determinism first: batching must change throughput and nothing
    # else.  (Digest excludes schedule and ops by design.)
    base_digests = sorted(hunt_digest(h) for h in runs[1][0].hunts)
    for batch in BATCHES[1:]:
        assert sorted(hunt_digest(h) for h in runs[batch][0].hunts) == (
            base_digests
        ), f"batch={batch} changed the hunt set"

    lines = [
        f"campaign: {len(CPUS)} rosters x tests_per_bug=1 "
        f"({len(runs[1][0].hunts)} hunts, 2x2-op programs) at "
        f"workers={WORKERS} on {cores} core(s)",
    ]
    rates = {}
    for batch in BATCHES:
        result, wall = runs[batch]
        hunts_s = len(result.hunts) / wall
        ops = sum(h.ops for h in result.hunts)
        rates[batch] = hunts_s
        lines.append(
            f"  batch={batch:>2}: wall={wall:6.2f}s  "
            f"hunts/s={hunts_s:8.1f}  ops/s={ops / wall:10.1f}"
        )
    speedup = rates[16] / rates[1]
    lines.append(f"  batch=16 vs batch=1 speedup: {speedup:.2f}x")
    record("batched_throughput", "\n".join(lines))

    # Batching must never cost throughput, anywhere.
    assert speedup >= 1.2, (
        f"batch=16 should beat batch=1 even single-core, got {speedup:.2f}x"
    )
    if cores >= WORKERS:
        # With real parallelism the parent's per-task serial work is
        # the unbatched ceiling; dividing it by 16 is worth >= 3x.
        assert speedup >= 3.0, (
            f"expected >= 3x at workers={WORKERS} on {cores} cores, "
            f"measured {speedup:.2f}x"
        )
