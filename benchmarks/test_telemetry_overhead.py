"""Telemetry overhead: disabled vs enabled-with-NullSink on the hot path.

The instrumentation contract (``src/repro/telemetry/registry.py``) is
that a dark instrumentation point costs one attribute load and one
branch, and that an enabled registry draining into a :class:`NullSink`
stays within 5% of disabled on the real checking pipeline — i.e. under
the run-to-run noise floor of ``test_engine_scaling.py``.  Measurements
interleave the two modes and keep the minimum per mode, so thermal and
scheduling drift cannot bias the ratio.
"""

import time

import pytest

from repro import telemetry
from repro.core.closure import ClosureChecker
from repro.generator.config import GeneratorConfig
from repro.generator.generator import generate_program
from repro.model.expansion import expand
from repro.sim.machine import TsoMachine
from repro.telemetry import NullSink, Telemetry

#: Interleaved timing rounds per mode.
ROUNDS = 7

#: Accepted enabled/disabled ratio for the full pipeline (ISSUE bound).
MAX_OVERHEAD = 1.05


@pytest.fixture(autouse=True)
def _reset_global_telemetry():
    yield
    telemetry.reset()


def _aprog(total_ops: int = 400, seed: int = 31):
    from repro.analysis.runtime import _MEASURE_MIX

    config = GeneratorConfig(
        nprocs=4, ops_per_proc=total_ops // 4, shared_words=16,
        mix=_MEASURE_MIX, loop_prob=0.0,
    )
    program = generate_program(config, seed=seed)
    execution = TsoMachine(program, seed=seed).run()
    return expand(execution, initial=program.initial)


def _time_min(fn, rounds=ROUNDS):
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _interleaved_min(run, rounds=ROUNDS):
    """Min-of-N per mode, alternating disabled/enabled each round."""
    disabled = Telemetry(enabled=False)
    enabled = Telemetry(enabled=True, sinks=[NullSink()])
    best = {"disabled": float("inf"), "enabled": float("inf")}
    for _ in range(rounds):
        for mode, instance in (("disabled", disabled), ("enabled", enabled)):
            telemetry.set_telemetry(instance)
            t0 = time.perf_counter()
            run()
            best[mode] = min(best[mode], time.perf_counter() - t0)
    return best["disabled"], best["enabled"]


def test_null_sink_overhead_on_check_pipeline(record):
    aprog = _aprog()
    checker = ClosureChecker()
    checker.run(aprog)  # warmup both code paths
    disabled, enabled = _interleaved_min(lambda: checker.run(aprog))
    ratio = enabled / disabled

    # Micro cost of one dark span entry/exit (the disabled fast path).
    telemetry.set_telemetry(Telemetry(enabled=False))
    n = 100_000
    dark = _time_min(lambda: [telemetry.span("x") for _ in range(n)], rounds=3)

    record(
        "telemetry_overhead",
        "Telemetry overhead (closure engine, 400-op analysis program)\n"
        f"  disabled       {disabled * 1e3:8.2f} ms/check (min of {ROUNDS})\n"
        f"  null sink      {enabled * 1e3:8.2f} ms/check (min of {ROUNDS})\n"
        f"  ratio          {ratio:8.3f}  (bound {MAX_OVERHEAD})\n"
        f"  dark span      {dark / n * 1e9:8.1f} ns/entry",
    )
    assert ratio <= MAX_OVERHEAD, (
        f"null-sink telemetry costs {100 * (ratio - 1):.1f}% on the check "
        f"pipeline (bound: {100 * (MAX_OVERHEAD - 1):.0f}%)"
    )


def test_disabled_span_is_allocation_free():
    telemetry.set_telemetry(Telemetry(enabled=False))
    assert telemetry.span("a") is telemetry.span("b")
