"""Paper-scale end-to-end run (Sec. 3.2 / 5.2 operating point).

"On physical systems, we typically run TSOtool on configurations of up
to 16 processors with a few thousand memory operations per processor",
and "our analysis algorithm runs in the order of minutes on programs
with about 100,000 operations" on a 450 MHz UltraSPARC-II.

This bench drives the full pipeline once at 16 processors x 400
instructions (≈10k analysis nodes after multi-word expansion) and checks
the whole thing stays in single-digit seconds on a modern laptop — the
scaled-down equivalent of the paper's operating point.
"""

import pytest

from repro.analysis.runtime import measure_runtime

NPROCS = 16
SHARED_WORDS = 16
TOTAL_OPS = 6400


def test_sixteen_processor_run(benchmark, record):
    point = measure_runtime(
        NPROCS, SHARED_WORDS, TOTAL_OPS, seed=12, repeats=1
    )
    # The per-pass closure engine alongside, so the recorded artifact
    # shows the structural difference: its rebuild count tracks the
    # fixed-point iteration count, while the default (vc) engine's
    # stays at one however many passes run.  The kernel-batched vck
    # engine rides the same point; this is where its whole-round array
    # math must pay for itself.
    vck_point = measure_runtime(
        NPROCS, SHARED_WORDS, TOTAL_OPS, seed=12, repeats=1, engine="vck"
    )
    closure_point = measure_runtime(
        NPROCS, SHARED_WORDS, TOTAL_OPS, seed=12, repeats=1, engine="closure"
    )
    record(
        "paper_scale",
        "Paper-scale operating point (16 CPUs, 400 instructions each)\n"
        f"  vc      {point.row()}\n"
        f"  vck     {vck_point.row()}\n"
        f"  closure {closure_point.row()}",
    )
    assert point.nodes > 8_000
    assert point.seconds < 60.0, "analysis fell off a cliff at paper scale"
    assert point.closure_rebuilds == 1
    assert closure_point.closure_rebuilds >= closure_point.iterations
    assert vck_point.closure_rebuilds == 1
    # The kernel engine's reason to exist: >= 3x over the scalar vc
    # engine at paper scale (with slack for shared-runner noise — the
    # measured gap is comfortably above the bound).
    assert vck_point.seconds * 2.5 < point.seconds, (
        f"vck lost its batching edge: {vck_point.seconds:.2f}s vs "
        f"vc {point.seconds:.2f}s"
    )

    benchmark.pedantic(
        lambda: measure_runtime(NPROCS, SHARED_WORDS, TOTAL_OPS, seed=12),
        rounds=1, iterations=1,
    )
