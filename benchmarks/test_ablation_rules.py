"""Ablation: what the inferred rules R6/R7 buy (DESIGN.md choice #2).

The static rules R1–R3 plus the observed rules R4/R5 are cheap; R6/R7
carry the fixed-point cost.  This bench measures both sides of that
trade on the litmus library and on fault-injected machine runs: how many
violations each configuration catches, and what it pays.
"""

import pytest

from repro.core.closure import ClosureChecker
from repro.generator.config import GeneratorConfig
from repro.generator.generator import generate_program
from repro.generator.litmus import LITMUS_LIBRARY
from repro.model.expansion import expand
from repro.sim.faults import DroppedInvalidateFault, StoreBufferReorderFault
from repro.sim.machine import TsoMachine
from tests.util import litmus_aprog


def _violating_tso_cases():
    return [c for c in LITMUS_LIBRARY if c.expect.get("TSO") is False]


def test_rule_ablation_detection_rate(benchmark, record):
    """R6/R7 off: how many litmus and injected violations survive?"""
    full = ClosureChecker()
    ablated = ClosureChecker(inferred_rules=False)

    litmus_cases = _violating_tso_cases()
    full_catches = ablated_catches = 0
    for case in litmus_cases:
        if not full.run(litmus_aprog(case.text)).ok:
            full_catches += 1
        if not ablated.run(litmus_aprog(case.text)).ok:
            ablated_catches += 1

    # Fault-injected runs: count detected violations over a fixed set.
    config = GeneratorConfig(nprocs=4, ops_per_proc=80, shared_words=6)
    injected_full = injected_ablated = injected_total = 0
    for seed in range(20):
        for mechanism in (StoreBufferReorderFault, DroppedInvalidateFault):
            program = generate_program(config, seed=seed)
            machine = TsoMachine(program, seed=seed, faults=[mechanism(rate=0.6)])
            execution = machine.run()
            aprog = expand(
                execution, initial=program.initial, word_names=program.word_names
            )
            injected_total += 1
            if not full.run(aprog).ok:
                injected_full += 1
            if not ablated.run(aprog).ok:
                injected_ablated += 1

    record(
        "ablation_rules",
        "Ablation: inferred rules R6/R7 on vs off\n"
        f"  litmus violations caught:   full {full_catches}/{len(litmus_cases)}, "
        f"without R6/R7 {ablated_catches}/{len(litmus_cases)}\n"
        f"  injected-fault runs flagged: full {injected_full}/{injected_total}, "
        f"without R6/R7 {injected_ablated}/{injected_total}",
    )

    assert full_catches == len(litmus_cases)
    # Without the inferred edges the checker must lose real detections.
    assert ablated_catches < full_catches
    assert injected_ablated < injected_full

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_rule_ablation_runtime(benchmark):
    """What R6/R7 cost on a clean run of moderate size."""
    from repro.analysis.runtime import _MEASURE_MIX

    config = GeneratorConfig(
        nprocs=4, ops_per_proc=300, shared_words=16,
        mix=_MEASURE_MIX, loop_prob=0.0,
    )
    program = generate_program(config, seed=23)
    execution = TsoMachine(program, seed=23).run()
    aprog = expand(execution, initial=program.initial)

    full = ClosureChecker()
    ablated = ClosureChecker(inferred_rules=False)
    result = benchmark.pedantic(
        lambda: full.run(aprog), rounds=3, iterations=1, warmup_rounds=1
    )
    assert result.ok
    ablated_result = ablated.run(aprog)
    assert ablated_result.ok
    benchmark.extra_info.update(
        full_seconds=result.stats.seconds,
        ablated_seconds=ablated_result.stats.seconds,
        inferred_edges=result.stats.inferred_edges,
    )
