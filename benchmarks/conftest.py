"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one table or figure of the paper and records
its rows under ``benchmarks/results/`` (also echoed to stdout, visible
with ``pytest -s``), so EXPERIMENTS.md can be refreshed from the files.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.analysis.campaign import CampaignConfig, run_campaign

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def record():
    """Write a named result artifact and echo it."""

    def _record(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n--- {name} ---\n{text}\n")

    return _record


@pytest.fixture(scope="session")
def campaign_result():
    """One full six-CPU campaign, shared by the Table 1 and Table 2 benches."""
    return run_campaign(config=CampaignConfig(tests_per_bug=10))
