"""Ablation: the literal Fig. 2 traversal engine vs the closure engine.

DESIGN.md design-choice #1: the paper reports minutes of analysis for
100k-operation programs on a 450 MHz UltraSPARC-II, which requires
bounding the R6/R7 traversals.  This bench quantifies the gap between
the two implementations of the same rules — both must agree on every
verdict (also enforced by property tests) while differing in cost.
"""

import pytest

from repro.core.checker import BaselineChecker
from repro.core.closure import ClosureChecker
from repro.generator.config import GeneratorConfig
from repro.generator.generator import generate_program
from repro.model.expansion import expand
from repro.sim.machine import TsoMachine

TOTAL_OPS = 800
SHARED_WORDS = 16
NPROCS = 4


@pytest.fixture(scope="module")
def aprog():
    from repro.analysis.runtime import _MEASURE_MIX

    config = GeneratorConfig(
        nprocs=NPROCS,
        ops_per_proc=TOTAL_OPS // NPROCS,
        shared_words=SHARED_WORDS,
        mix=_MEASURE_MIX,
        loop_prob=0.0,
    )
    program = generate_program(config, seed=17)
    execution = TsoMachine(program, seed=17).run()
    return expand(execution, initial=program.initial, word_names=program.word_names)


def test_ablation_baseline_engine(benchmark, aprog):
    """The Fig. 2 reading: per-iteration bounded BFS traversals."""
    checker = BaselineChecker()
    result = benchmark.pedantic(
        lambda: checker.run(aprog), rounds=3, iterations=1, warmup_rounds=1
    )
    assert result.ok
    benchmark.extra_info.update(
        engine="baseline",
        traversal_visits=result.stats.traversal_visits,
        edges=result.stats.edges,
    )


def test_ablation_closure_engine(benchmark, aprog):
    """The production engine: bitset reachability, no traversals."""
    checker = ClosureChecker()
    result = benchmark.pedantic(
        lambda: checker.run(aprog), rounds=3, iterations=1, warmup_rounds=1
    )
    assert result.ok
    benchmark.extra_info.update(engine="closure", edges=result.stats.edges)


def test_ablation_matrix_engine(benchmark, aprog):
    """The numpy packed-bit-matrix formulation of the same closure."""
    from repro.core.matrix import MatrixChecker

    checker = MatrixChecker()
    result = benchmark.pedantic(
        lambda: checker.run(aprog), rounds=3, iterations=1, warmup_rounds=1
    )
    assert result.ok
    benchmark.extra_info.update(engine="matrix", edges=result.stats.edges)


def test_ablation_engines_agree_and_speedup(benchmark, aprog, record):
    """Same verdict; the closure engine should win by a wide margin."""
    baseline = BaselineChecker().run(aprog)
    closure = ClosureChecker().run(aprog)
    assert baseline.ok == closure.ok
    speedup = baseline.stats.seconds / max(closure.stats.seconds, 1e-9)
    record(
        "ablation_checkers",
        "Ablation: Fig. 2 traversal engine vs bitset closure engine\n"
        f"  nodes={aprog.n} ops~{TOTAL_OPS}\n"
        f"  baseline: {baseline.stats.seconds * 1e3:9.2f} ms "
        f"({baseline.stats.traversals} traversals, "
        f"{baseline.stats.traversal_visits} nodes visited)\n"
        f"  closure:  {closure.stats.seconds * 1e3:9.2f} ms\n"
        f"  speedup:  {speedup:.1f}x",
    )
    assert speedup > 3.0, f"expected a clear win, got {speedup:.1f}x"
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
