"""Campaign service overhead: shards/sec and queue cost vs run_campaign.

The service adds layers a one-shot campaign does not have — manifest
expansion, per-hunt JSONL persistence, dedup digesting, shard markers
and a final store-backed merge.  This bench runs the same workload both
ways and records what those layers cost:

* wall-clock overhead of ``JobRunner.run()`` over a plain
  ``run_campaign`` loop of the same hunts (same seeds, same configs);
* shard and hunt throughput of the service path;
* resume cost — re-running a completed job (pure store load + merge).

Parity is asserted (the service must not change any hunt), overhead is
recorded; only an egregious regression fails the bench, since absolute
times vary with the host.
"""

from __future__ import annotations

import time

from repro.analysis.campaign import run_campaign
from repro.service.daemon import CampaignService, ServiceConfig
from repro.service.manifest import CampaignManifest
from repro.service.queue import JobRunner
from repro.service.store import ResultStore
from repro.sim.cpus import cpu_by_name

SEEDS = (2004, 2005, 2006)
CPUS = ("CPU1", "CPU2")
TESTS_PER_BUG = 8


def test_service_throughput_vs_run_campaign(record, tmp_path_factory):
    manifest = CampaignManifest(
        name="bench", seeds=SEEDS, cpus=CPUS, tests_per_bug=TESTS_PER_BUG
    )
    shards = manifest.shards()

    # Plain path: one run_campaign per seed (what a user would script).
    t0 = time.perf_counter()
    plain_hunts = []
    for seed in SEEDS:
        result = run_campaign(
            cpus=[cpu_by_name(c) for c in CPUS],
            config=manifest.campaign_config(seed),
        )
        plain_hunts.extend(result.hunts)
    plain_seconds = time.perf_counter() - t0

    # Service path: same hunts through the queue + persistent store.
    root = str(tmp_path_factory.mktemp("service-bench"))
    store = ResultStore(root)
    t0 = time.perf_counter()
    service_result = JobRunner(manifest, store).run()
    service_seconds = time.perf_counter() - t0

    # Parity: the service layers must not perturb a single hunt.
    assert service_result.hunts == plain_hunts

    # Resume path: everything recorded, run() only loads and merges.
    t0 = time.perf_counter()
    resumed = JobRunner(manifest, ResultStore(root)).run()
    resume_seconds = time.perf_counter() - t0
    assert resumed.hunts == plain_hunts

    hunts = len(plain_hunts)
    overhead = service_seconds - plain_seconds
    lines = [
        f"workload: {len(SEEDS)} seed(s) x {', '.join(CPUS)} at "
        f"tests_per_bug={TESTS_PER_BUG} = {len(shards)} shards, "
        f"{hunts} hunts (sequential, 1 worker)",
        f"  plain run_campaign loop: {plain_seconds:7.2f}s "
        f"({hunts / plain_seconds:6.2f} hunts/s)",
        f"  service JobRunner.run(): {service_seconds:7.2f}s "
        f"({hunts / service_seconds:6.2f} hunts/s, "
        f"{len(shards) / service_seconds:5.2f} shards/s)",
        f"  queue+store overhead:    {overhead:7.2f}s "
        f"({100.0 * overhead / plain_seconds:+5.1f}% of plain)",
        f"  resume of finished job:  {resume_seconds:7.3f}s "
        "(store load + merge only, zero hunts re-run)",
    ]
    record("service_throughput", "\n".join(lines))

    # The persistence layers ride on hunts that each simulate and check
    # whole programs — egregious overhead means something is broken.
    assert service_seconds <= plain_seconds * 1.5 + 2.0, (
        f"service path {service_seconds:.2f}s vs plain "
        f"{plain_seconds:.2f}s — persistence overhead exploded"
    )
    assert resume_seconds < plain_seconds, "resume must not re-run hunts"


def test_status_probe_cache(record, tmp_path_factory):
    """Status probes on an idle spool must answer from the summary
    cache — O(stat calls) per probe — not re-parse every store line.

    The guard is deterministic (the service's cache-hit counter), not a
    timing threshold: every warm probe must hit, and any store append
    must invalidate exactly once.
    """
    root = str(tmp_path_factory.mktemp("status-cache-bench"))
    manifest = CampaignManifest(
        name="bench-status", seeds=SEEDS, cpus=CPUS,
        tests_per_bug=TESTS_PER_BUG,
    )
    service = CampaignService(ServiceConfig(root=root, http_port=None))
    service.submit(manifest)
    service.run_job(manifest.job_id, manifest)

    # Cold probe: parses the whole store once and fills the cache.
    t0 = time.perf_counter()
    service.status()
    cold_seconds = time.perf_counter() - t0
    assert service._summary_cache_hits == 0

    # Warm probes: every one answers from the cache.
    probes = 50
    t0 = time.perf_counter()
    for _ in range(probes):
        service.status()
    warm_seconds = (time.perf_counter() - t0) / probes
    assert service._summary_cache_hits == probes

    # Any append invalidates: the next probe re-parses (no new hit),
    # the one after hits again.
    store = ResultStore(service.job_dir(manifest.job_id))
    try:
        store.append_lease(
            manifest.shards()[0].shard_id, "claim", "bench-owner",
            time=time.time(), expires=time.time() + 30.0,
        )
    finally:
        store.close()
    service.status()
    assert service._summary_cache_hits == probes
    service.status()
    assert service._summary_cache_hits == probes + 1

    record("status_probe_cache", "\n".join([
        f"store: {manifest.hunt_count()} hunts across "
        f"{len(manifest.shards())} shards",
        f"  cold probe (full store parse): {cold_seconds * 1000:8.2f} ms",
        f"  warm probe (signature cache):  {warm_seconds * 1000:8.2f} ms "
        f"({cold_seconds / max(warm_seconds, 1e-9):6.1f}x)",
    ]))
