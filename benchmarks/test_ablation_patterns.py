"""Ablation: directed corner-case sequences vs pure random generation.

Sec. 3.1 motivates letting users specify "desirable sequences of memory
operations which are considered likely to exercise known corner-cases".
This bench quantifies when that pays: detection rate of a low-trigger-
rate fault over a fixed test budget, with and without directed patterns
spliced into the generated programs.

Expected picture (recorded to ``benchmarks/results/ablation_patterns.txt``):

* hazard-matched directed sequences win big — ``atomic_contention``
  roughly triples the detection rate of the atomicity-window bug at a
  trigger rate where random tests mostly miss it;
* mismatched patterns can *hurt* — splicing store bursts into tests
  hunting a drain-reordering bug displaces the random racy loads that
  would have observed the reorder.  Random testing with intense sharing
  is a strong baseline, which is exactly why the paper leads with it.
"""

import pytest

from repro.core.api import check
from repro.generator.config import GeneratorConfig, InstructionMix
from repro.generator.generator import generate_program
from repro.sim.faults import (
    AtomicityHoleFault,
    MembarSkipFault,
    WritebackReorderFault,
)
from repro.sim.machine import TsoMachine

MIX = InstructionMix(
    load=30, store=30, swap=3, cas=3, membar=4, block_load=0.5,
    block_store=0.5, nonfaulting_load=0.5, prefetch=0.5, flush=0.5,
    branch=0.5, interrupt=0.5,
)

RUNS = 40

#: (mechanism, low trigger rate, matched pattern set)
CASES = [
    (AtomicityHoleFault, 0.10, ("atomic_contention",)),
    (MembarSkipFault, 0.15, ("message_passing", "dekker_flags", "fence_ladder")),
    (WritebackReorderFault, 0.08, ("store_burst",)),
]


def _detection_rate(mechanism, rate, pattern_prob, patterns=None) -> int:
    hits = 0
    for seed in range(RUNS):
        kwargs = dict(
            nprocs=4, ops_per_proc=80, shared_words=6, mix=MIX,
            pattern_prob=pattern_prob,
        )
        if patterns:
            kwargs["patterns"] = patterns
        config = GeneratorConfig(**kwargs)
        program = generate_program(config, seed=seed)
        machine = TsoMachine(program, seed=seed, faults=[mechanism(rate=rate)])
        if not check(program, machine.run()).ok:
            hits += 1
    return hits


def test_pattern_ablation(benchmark, record):
    rows = []
    results = {}
    for mechanism, rate, patterns in CASES:
        random_hits = _detection_rate(mechanism, rate, 0.0)
        directed_hits = _detection_rate(mechanism, rate, 0.5, patterns)
        results[mechanism.__name__] = (random_hits, directed_hits)
        rows.append(
            f"  {mechanism.__name__:26s} trigger={rate:<5g} "
            f"random {random_hits}/{RUNS}   "
            f"directed({','.join(patterns)}) {directed_hits}/{RUNS}"
        )
    record(
        "ablation_patterns",
        "Ablation: directed corner-case sequences vs pure random tests\n"
        + "\n".join(rows),
    )

    # The hazard-matched case must win decisively.
    random_hits, directed_hits = results["AtomicityHoleFault"]
    assert directed_hits > 2 * random_hits, (
        f"atomic_contention should dominate: {directed_hits} vs {random_hits}"
    )
    # Sanity: both strategies find *something* everywhere.
    for name, (r, d) in results.items():
        assert r + d > 0, name

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
