"""Table 1: bugs found by TSOtool per CPU, classified by bug class.

The paper reports 106 bugs across six SPARC processors: 7 architecture,
69 design, 25 monitor and 5 environment bugs.  The reproduction seeds
each synthetic CPU with the same roster (see ``repro.sim.cpus``) and
runs the randomized hunting campaign; the bench regenerates the table
from *detections*, so every row also demonstrates that the checker
actually finds each seeded bug mechanism.
"""

from repro.analysis.campaign import format_table1
from repro.analysis.stats import render_campaign_stats
from repro.sim.faults import BugClass

#: Table 1 of the paper: (architecture, design, monitor, environment).
PAPER_TABLE1 = {
    "CPU1": (0, 3, 0, 0),
    "CPU2": (0, 4, 3, 0),
    "CPU3": (0, 11, 8, 5),
    "CPU4": (0, 17, 8, 0),
    "CPU5": (2, 20, 5, 0),
    "CPU6": (5, 14, 1, 0),
}

CLASS_ORDER = (
    BugClass.ARCHITECTURE, BugClass.DESIGN, BugClass.MONITOR, BugClass.ENVIRONMENT,
)


def test_table1_regenerated(benchmark, campaign_result, record):
    """The campaign's Table 1 must match the paper row for row."""
    record(
        "table1_bug_classes",
        format_table1(campaign_result)
        + "\n\n"
        + render_campaign_stats(campaign_result),
    )

    rows = dict(campaign_result.table1_rows())
    for cpu, expected in PAPER_TABLE1.items():
        got = tuple(rows[cpu][cls] for cls in CLASS_ORDER)
        assert got == expected, f"{cpu}: detected {got}, paper says {expected}"

    totals = [0, 0, 0, 0]
    for counts in rows.values():
        for i, cls in enumerate(CLASS_ORDER):
            totals[i] += counts[cls]
    assert totals == [7, 69, 25, 5]
    assert sum(totals) == 106

    # Time one representative hunt so the bench reports a meaningful
    # per-bug cost (the full campaign already ran in the shared fixture).
    from repro.analysis.campaign import CampaignConfig, hunt_bug
    from repro.sim.cpus import cpu_by_name

    spec = cpu_by_name("CPU1").bugs[0]
    benchmark.pedantic(
        lambda: hunt_bug(spec, "CPU1", CampaignConfig(tests_per_bug=10)),
        rounds=3, iterations=1,
    )
