"""Sec. 5.2's reproduction claim: failing tests keep failing on re-run.

The paper argues a hardware TSOtool failure "has a good probability of
being reproduced in the simulation environment" because the failing
tests are short.  The analogue here: re-run a failing (program, fault)
pair under fresh random interleavings and measure how often the failure
manifests again.

Recorded findings (``benchmarks/results/sec52_reproduction.txt``):

* structural bugs (store-buffer reordering) reproduce almost always,
  even on very short tests;
* timing-window bugs (atomicity holes, dropped invalidates) reproduce
  less often on short tests and more often as tests lengthen — more
  chances for the window to reopen.
"""

import pytest

from repro.analysis.repro_study import sweep_reproduction
from repro.sim.faults import (
    AtomicityHoleFault,
    DroppedInvalidateFault,
    StoreBufferReorderFault,
)

CASES = [
    (StoreBufferReorderFault, 0.3),
    (AtomicityHoleFault, 0.4),
    (DroppedInvalidateFault, 0.3),
]
OPS_POINTS = (30, 80, 200)


def test_sec52_reproduction_rates(benchmark, record):
    points = sweep_reproduction(CASES, OPS_POINTS, failures=6, reruns=10)
    record(
        "sec52_reproduction",
        "Sec. 5.2: probability a failing test fails again under a fresh "
        "interleaving\n" + "\n".join("  " + p.row() for p in points),
    )

    by_mech = {}
    for point in points:
        by_mech.setdefault(point.mechanism, {})[point.ops_per_proc] = (
            point.reproduction_rate
        )

    # "Good probability": the structural bug reproduces reliably at the
    # paper's short-test lengths.
    assert by_mech["StoreBufferReorderFault"][80] >= 0.7
    # Every mechanism reproduces at least sometimes at every length.
    for mech, rates in by_mech.items():
        for ops, rate in rates.items():
            assert rate > 0.0, (mech, ops)
    # Longer tests give timing-window bugs more chances: the rate at the
    # longest tests must beat the shortest for the two window bugs.
    for mech in ("AtomicityHoleFault", "DroppedInvalidateFault"):
        assert by_mech[mech][200] > by_mech[mech][30], mech

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
