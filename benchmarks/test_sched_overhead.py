"""Scheduler-path overhead: the policy indirection and the PSO drain scan.

Two questions the ``repro.sched`` refactor raises:

1. Did routing every nondeterministic decision through a
   ``SchedulePolicy`` slow the simulator down?  (It should not — the
   default ``RandomPolicy`` makes the exact RNG calls the machine used
   to make inline.)
2. Did hoisting the PSO eligibility scan's word-set construction into
   ``BufferedStore.word_set`` (a ``cached_property``) pay off?  The scan
   runs once per drain decision; before the hoist it rebuilt a
   ``frozenset`` per entry per scan.

Records ``benchmarks/results/sched_overhead.txt``.
"""

import time

from repro.generator.config import GeneratorConfig
from repro.generator.generator import generate_program
from repro.sim.machine import MachineConfig, TsoMachine
from repro.sim.storebuffer import BufferedStore, StoreBuffer

GEN = GeneratorConfig(nprocs=4, ops_per_proc=120, shared_words=8)

#: Eligibility-scan micro-bench shape: a deep buffer with overlapping
#: word sets, scanned many times (as a long PSO run would).
BUFFER_DEPTH = 8
SCAN_ITERS = 20_000


def _legacy_eligible(buffer):
    """The pre-hoist scan: rebuilds each entry's word set on every call."""
    eligible = []
    seen_words = set()
    for idx, entry in enumerate(buffer.entries()):
        words = frozenset(addr for addr, _value in entry.words)
        if not (words & seen_words):
            eligible.append(idx)
        seen_words |= words
    return eligible


def _make_buffer():
    buffer = StoreBuffer(capacity=BUFFER_DEPTH)
    for i in range(BUFFER_DEPTH):
        words = tuple((8 * ((i + k) % 5), i) for k in range(2))
        buffer.push(BufferedStore(words=words, tag=f"e{i}"))
    return buffer


def _time_scan(scan, buffer):
    start = time.perf_counter()
    for _ in range(SCAN_ITERS):
        scan(buffer)
    return time.perf_counter() - start


def _time_pso_runs(nruns=6):
    config = MachineConfig(pso_mode=True, drain_bias=0.2)
    total = 0.0
    decisions = 0
    for seed in range(nruns):
        program = generate_program(GEN, seed=seed)
        machine = TsoMachine(program, seed=seed, config=config)
        start = time.perf_counter()
        machine.run()
        total += time.perf_counter() - start
        decisions += machine.stats.sched_decisions
    return total, decisions


def test_sched_overhead(benchmark, record):
    buffer = _make_buffer()
    # Warm both paths (and populate the word_set caches) before timing.
    _legacy_eligible(buffer)
    TsoMachine._pso_eligible(buffer)
    legacy = min(_time_scan(_legacy_eligible, buffer) for _ in range(3))
    cached = min(
        _time_scan(TsoMachine._pso_eligible, buffer) for _ in range(3)
    )

    run_seconds, decisions = _time_pso_runs()
    per_decision_us = run_seconds / decisions * 1e6

    record(
        "sched_overhead",
        "Scheduler-path overhead\n"
        f"  PSO eligibility scan, depth={BUFFER_DEPTH}, "
        f"{SCAN_ITERS} iters (best of 3):\n"
        f"    legacy (rebuild word sets) = {legacy * 1e3:7.1f}ms\n"
        f"    cached word_set            = {cached * 1e3:7.1f}ms "
        f"({legacy / cached:4.1f}x)\n"
        f"  Full PSO runs through RandomPolicy: {decisions} scheduler "
        f"decisions in {run_seconds:.2f}s "
        f"({per_decision_us:.1f}us/decision, simulation inclusive)",
    )

    # The hoist must not be a regression; in practice it is a clear win
    # because the per-entry frozensets are built once, not per scan.
    assert cached <= legacy * 1.10
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
