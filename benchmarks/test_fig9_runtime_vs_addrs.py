"""Fig. 9: analysis runtime vs total memory operations, by shared-address
count.

The paper fixes 4 processors and sweeps the operation count for several
shared-location counts, observing (a) near-linear scaling in operations
and (b) higher runtime with more shared addresses, explained as "more
addresses lead to a sparser graph with more dispersed ordering relations
... a larger number of nodes to be visited during the traversal of
predecessor/successor subgraphs due to Rules R6 and R7".

What this reproduction measures (and EXPERIMENTS.md discusses):

* linearity in operations — holds for both engines;
* the *mechanism* behind the paper's address trend — nodes visited per
  R6/R7 traversal — is measured directly on the traversal (baseline)
  engine and indeed grows with the address count;
* the wall-clock address trend itself is implementation-dependent: in
  this reproduction the dense-sharing configurations pay more for edge
  insertion than they save on traversal, so total runtime *decreases*
  with more addresses — an expected deviation, since the bitset closure
  engine eliminates exactly the traversal cost the paper's trend came
  from.
"""

import pytest

from repro.analysis.runtime import format_series, measure_runtime
from repro.core.api import make_checker
from repro.core.checker import BaselineChecker
from repro.core.policy import TSO
from repro.generator.config import GeneratorConfig
from repro.generator.generator import generate_program
from repro.model.expansion import expand
from repro.sim.machine import TsoMachine

NPROCS = 4
WORD_COUNTS = (4, 16, 64)
OPS_POINTS = (400, 800, 1600)


def _aprog(words: int, total_ops: int, seed: int = 9):
    from repro.analysis.runtime import _MEASURE_MIX

    config = GeneratorConfig(
        nprocs=NPROCS,
        ops_per_proc=max(1, total_ops // NPROCS),
        shared_words=words,
        mix=_MEASURE_MIX,
        loop_prob=0.0,
    )
    program = generate_program(config, seed=seed)
    execution = TsoMachine(program, seed=seed).run()
    return expand(execution, initial=program.initial, word_names=program.word_names)


@pytest.mark.parametrize("words", WORD_COUNTS)
@pytest.mark.parametrize("total_ops", OPS_POINTS)
def test_fig9_point(benchmark, words, total_ops):
    """One (shared-word count, operation count) point of Fig. 9."""
    aprog = _aprog(words, total_ops)
    checker = make_checker(TSO, "closure")
    result = benchmark.pedantic(
        lambda: checker.run(aprog), rounds=3, iterations=1, warmup_rounds=1
    )
    assert result.ok
    benchmark.extra_info.update(
        shared_words=words, total_ops=total_ops, nodes=result.stats.nodes
    )


def test_fig9_series_and_shape(benchmark, record):
    """The Fig. 9 series for both engines, plus the shape claims."""
    closure_points = [
        measure_runtime(NPROCS, words, ops, seed=9, repeats=2)
        for words in WORD_COUNTS
        for ops in OPS_POINTS
    ]
    lines = [
        format_series(
            closure_points,
            f"Fig. 9 (closure engine): analysis time vs ops ({NPROCS} processors)",
        )
    ]

    # The traversal engine exposes the paper's mechanism: visited nodes
    # per R6/R7 traversal.  Measured at a single op count to keep the
    # bench quick.
    visit_rows = []
    visits_per_traversal = {}
    for words in WORD_COUNTS:
        result = BaselineChecker().run(_aprog(words, 400))
        assert result.ok
        stats = result.stats
        per = stats.traversal_visits / max(stats.traversals, 1)
        visits_per_traversal[words] = per
        visit_rows.append(
            f"  words={words:<4d} traversals={stats.traversals:<6d} "
            f"visits/traversal={per:9.1f} time={stats.seconds * 1e3:9.2f} ms"
        )
    lines.append(
        "Fig. 9 mechanism (traversal engine, 400 ops): nodes visited per "
        "R6/R7 traversal\n" + "\n".join(visit_rows)
    )
    record("fig9_runtime_vs_addrs", "\n\n".join(lines))

    # Claim 1: near-linear in ops.  Holds cleanly at the paper's sharing
    # densities (16+ words); the extreme 4-word configuration grows its
    # inferred-edge count superlinearly and gets a looser bound, recorded
    # as a deviation in EXPERIMENTS.md.
    by_words = {
        w: [pt for pt in closure_points if pt.shared_words == w]
        for w in WORD_COUNTS
    }
    for words, series in by_words.items():
        lo, hi = series[0], series[-1]
        ratio = (hi.seconds / lo.seconds) / (hi.total_ops / lo.total_ops)
        bound = 10.0 if words <= 4 else 4.5
        assert ratio < bound, (
            f"words={words}: superlinear beyond tolerance: {ratio:.2f}"
        )
    # Claim 2 (mechanism): more addresses -> more nodes visited per
    # traversal, exactly as the paper explains.
    assert (
        visits_per_traversal[4]
        < visits_per_traversal[16]
        < visits_per_traversal[64]
    )

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
