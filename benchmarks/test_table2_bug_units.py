"""Table 2: bugs found by TSOtool per CPU, classified by functional unit.

The paper's unit totals — Pipe 4, Caches 49, TLB 6, LSU 14, Mem Cntlr 9,
Interconnect 12 — reflect where memory-system bugs live: overwhelmingly
in the caches, exactly what the derivative-CPU rosters mirror.  The
bench regenerates the table from campaign detections.
"""

from repro.analysis.campaign import format_table2
from repro.sim.faults import FuncUnit

#: Table 2 of the paper: (Pipe, Caches, TLB, LSU, Mem Cntlr, Interconnect).
PAPER_TABLE2 = {
    "CPU1": (0, 3, 0, 0, 0, 0),
    "CPU2": (1, 5, 0, 0, 1, 0),
    "CPU3": (0, 17, 0, 0, 0, 2),
    "CPU4": (0, 8, 0, 0, 8, 9),
    "CPU5": (3, 11, 6, 4, 0, 1),
    "CPU6": (0, 5, 0, 10, 0, 0),
}

UNIT_ORDER = (
    FuncUnit.PIPE, FuncUnit.CACHES, FuncUnit.TLB, FuncUnit.LSU,
    FuncUnit.MEM_CNTLR, FuncUnit.INTERCONNECT,
)


def test_table2_regenerated(benchmark, campaign_result, record):
    """The campaign's Table 2 must match the paper row for row."""
    record("table2_bug_units", format_table2(campaign_result))

    rows = dict(campaign_result.table2_rows())
    for cpu, expected in PAPER_TABLE2.items():
        got = tuple(rows[cpu][unit] for unit in UNIT_ORDER)
        assert got == expected, f"{cpu}: detected {got}, paper says {expected}"

    totals = [0] * 6
    for counts in rows.values():
        for i, unit in enumerate(UNIT_ORDER):
            totals[i] += counts[unit]
    assert totals == [4, 49, 6, 14, 9, 12]

    # Per-unit hunting cost for one cache bug (the dominant class).
    from repro.analysis.campaign import CampaignConfig, hunt_bug
    from repro.sim.cpus import cpu_by_name

    spec = cpu_by_name("CPU3").bugs[0]
    benchmark.pedantic(
        lambda: hunt_bug(spec, "CPU3", CampaignConfig(tests_per_bug=10)),
        rounds=3, iterations=1,
    )
