"""Engine scaling: the batch R1–R7 implementations across problem sizes.

Complements ``test_ablation_checkers.py`` (one size) with a sweep,
recording where each engine's cost structure bites: the traversal
baseline's per-iteration BFS cost, the int-bitset closure's word ops,
the numpy matrix engine's per-call overhead vs vectorized ORs, the
incremental vector-clock engine's frontier maintenance (which buys it
exactly one closure build regardless of iteration count), and the
kernel-batched vck engine, whose round-at-a-time array math is pure
constant-factor overhead at tiny sizes and the clear winner as the
per-round batches grow.
"""

import pytest

from repro.core.checker import BaselineChecker
from repro.core.closure import ClosureChecker
from repro.core.matrix import MatrixChecker
from repro.core.vc import VectorClockChecker
from repro.core.vck import KernelVectorChecker
from repro.generator.config import GeneratorConfig
from repro.generator.generator import generate_program
from repro.model.expansion import expand
from repro.sim.machine import TsoMachine

ENGINES = {
    "baseline": BaselineChecker,
    "closure": ClosureChecker,
    "matrix": MatrixChecker,
    "vc": VectorClockChecker,
    "vck": KernelVectorChecker,
}

#: Total-op sweep; the slower engines are capped at the smaller sizes
#: (the traversal engine's cost at 1600 ops is tens of seconds — the
#: point of the ablation — and the per-pass rebuild engines take tens
#: of seconds at 3200).  The upper sizes exist to separate vc from
#: vck, whose batches only amortize once rounds are big enough.
SIZES = (200, 400, 800, 1600, 3200)
BASELINE_MAX = 400
REBUILD_MAX = 800
_CAPS = {"baseline": BASELINE_MAX, "closure": REBUILD_MAX, "matrix": REBUILD_MAX}


def _aprog(total_ops: int, seed: int = 31):
    from repro.analysis.runtime import _MEASURE_MIX

    config = GeneratorConfig(
        nprocs=4, ops_per_proc=total_ops // 4, shared_words=16,
        mix=_MEASURE_MIX, loop_prob=0.0,
    )
    program = generate_program(config, seed=seed)
    execution = TsoMachine(program, seed=seed).run()
    return expand(execution, initial=program.initial)


@pytest.mark.parametrize("total_ops", SIZES)
@pytest.mark.parametrize("engine", sorted(ENGINES))
def test_engine_scaling_point(benchmark, engine, total_ops):
    if total_ops > _CAPS.get(engine, max(SIZES)):
        pytest.skip("slow engine capped to keep the bench quick")
    aprog = _aprog(total_ops)
    checker = ENGINES[engine]()
    result = benchmark.pedantic(
        lambda: checker.run(aprog), rounds=2, iterations=1, warmup_rounds=1
    )
    assert result.ok
    benchmark.extra_info.update(engine=engine, total_ops=total_ops,
                                nodes=aprog.n)


def test_engine_scaling_series(benchmark, record):
    rows = []
    verdicts = set()
    for total_ops in SIZES:
        aprog = _aprog(total_ops)
        cells = [f"  ops={total_ops:<6d} nodes={aprog.n:<6d}"]
        for name, cls in sorted(ENGINES.items()):
            if total_ops > _CAPS.get(name, max(SIZES)):
                cells.append(f"{name}=--")
                continue
            result = cls().run(aprog)
            verdicts.add(result.ok)
            cells.append(f"{name}={result.stats.seconds * 1e3:8.1f}ms")
        rows.append(" ".join(cells))
    record(
        "engine_scaling",
        "Engine scaling (same rules, five batch implementations)\n"
        + "\n".join(rows),
    )
    assert verdicts == {True}
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
