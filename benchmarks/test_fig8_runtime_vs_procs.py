"""Fig. 8: analysis runtime vs total memory operations, by processor count.

The paper fixes 16 shared words and sweeps the operation count for 2, 4,
8 and 16 processors on a 450 MHz UltraSPARC-II.  Claims to reproduce
(shape, not absolute numbers):

* runtime scales roughly linearly with total memory operations for a
  given processor count;
* for the same operation count, runtime increases with processor count
  ("a higher number of processors creates more ordering relationships
  ... a broader and denser analysis graph").
"""

import pytest

from repro.analysis.runtime import format_series, measure_runtime
from repro.core.api import make_checker
from repro.core.policy import TSO
from repro.generator.config import GeneratorConfig
from repro.generator.generator import generate_program
from repro.model.expansion import expand
from repro.sim.machine import TsoMachine

SHARED_WORDS = 16
PROC_COUNTS = (2, 4, 8, 16)
OPS_POINTS = (400, 800, 1600)


def _aprog(nprocs: int, total_ops: int, seed: int = 8):
    from repro.analysis.runtime import _MEASURE_MIX

    config = GeneratorConfig(
        nprocs=nprocs,
        ops_per_proc=max(1, total_ops // nprocs),
        shared_words=SHARED_WORDS,
        mix=_MEASURE_MIX,
        loop_prob=0.0,
    )
    program = generate_program(config, seed=seed)
    execution = TsoMachine(program, seed=seed).run()
    return expand(execution, initial=program.initial, word_names=program.word_names)


@pytest.mark.parametrize("nprocs", PROC_COUNTS)
@pytest.mark.parametrize("total_ops", OPS_POINTS)
def test_fig8_point(benchmark, nprocs, total_ops):
    """One (processor count, operation count) point of Fig. 8."""
    aprog = _aprog(nprocs, total_ops)
    checker = make_checker(TSO, "closure")
    result = benchmark.pedantic(
        lambda: checker.run(aprog), rounds=3, iterations=1, warmup_rounds=1
    )
    assert result.ok
    benchmark.extra_info.update(
        nprocs=nprocs, total_ops=total_ops,
        nodes=result.stats.nodes, edges=result.stats.edges,
    )


def test_fig8_series_and_shape(benchmark, record):
    """The full Fig. 8 series, plus the paper's two shape claims."""
    points = [
        measure_runtime(nprocs, SHARED_WORDS, ops, seed=8, repeats=2)
        for nprocs in PROC_COUNTS
        for ops in OPS_POINTS
    ]
    record(
        "fig8_runtime_vs_procs",
        format_series(
            points,
            "Fig. 8: analysis time vs total memory operations "
            f"({SHARED_WORDS} shared words)",
        ),
    )

    by_procs = {
        p: [pt for pt in points if pt.nprocs == p] for p in PROC_COUNTS
    }
    # Claim 1: near-linear in ops — quadrupling the op count must not
    # blow far past the linear prediction.  (Wall-clock, so the bound is
    # generous against scheduler noise; the typical ratio is ~1.5-2.)
    for series in by_procs.values():
        lo, hi = series[0], series[-1]
        ratio = (hi.seconds / lo.seconds) / (hi.total_ops / lo.total_ops)
        assert ratio < 4.0, f"superlinear beyond tolerance: {ratio:.2f}"
    # Claim 2: more processors -> denser graph -> slower.  The edge
    # counts are deterministic ("broader and denser analysis graph"),
    # the wall-clock comparison keeps a noise margin.
    for i in range(len(OPS_POINTS)):
        edge_series = [by_procs[p][i].edges for p in PROC_COUNTS]
        assert edge_series == sorted(edge_series), edge_series
    largest = {p: by_procs[p][-1].seconds for p in PROC_COUNTS}
    assert largest[16] > largest[2]

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
