"""Detection rate per scheduling policy: random vs PCT across the fleet.

Runs the six-CPU bug-hunting campaign once per scheduler and records
each policy's detection line.  PCT's guarantee is probabilistic coverage
of depth-d ordering bugs; on this fault catalog (which mostly triggers
on buffer-drain timing rather than rare interleavings) random is a
strong baseline, so the interesting output is how close the two land —
not a blowout either way.

Records ``benchmarks/results/sched_detection.txt``.
"""

from repro.analysis.campaign import CampaignConfig, run_campaign
from repro.generator.config import GeneratorConfig
from repro.sched.spec import SchedSpec

GEN = GeneratorConfig(nprocs=4, ops_per_proc=60, shared_words=6)

POLICIES = (
    SchedSpec(kind="random"),
    SchedSpec(kind="pct", pct_depth=3),
)


def test_sched_detection_rates(benchmark, record):
    lines = []
    rates = {}
    for spec in POLICIES:
        config = CampaignConfig(
            tests_per_bug=8, generator=GEN, seed=2004, sched=spec
        )
        result = run_campaign(config=config, workers=4)
        rates[spec.kind] = result.detection_rate()
        lines.append("  " + result.detection_line())
    record(
        "sched_detection",
        "Detection rate per scheduling policy (six-CPU campaign)\n"
        + "\n".join(lines),
    )
    # Both schedulers must remain effective bug-finders on this catalog.
    assert all(rate >= 0.5 for rate in rates.values()), rates
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
