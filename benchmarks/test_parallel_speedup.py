"""Parallel campaign engine: wall-clock speedup and result parity.

Runs the same campaign sequentially and across a 4-worker pool and
records both wall-clock times, the summed per-hunt CPU time, and the
speedup under ``benchmarks/results/parallel_speedup.txt``.  On a host
with >= 4 cores the pool should deliver >= 2.5x wall-clock speedup; on
smaller hosts the number is recorded but only result *parity* is
asserted (the hunts must be identical to the sequential run).
"""

from __future__ import annotations

import os

from repro.analysis.campaign import CampaignConfig, run_campaign
from repro.sim.cpus import cpu_by_name

WORKERS = 4
#: A campaign slice big enough to dominate pool overhead.
CPUS = ("CPU3", "CPU4", "CPU5")
TESTS_PER_BUG = 10


def test_parallel_speedup_and_parity(record):
    cpus = [cpu_by_name(name) for name in CPUS]
    config = CampaignConfig(tests_per_bug=TESTS_PER_BUG)
    sequential = run_campaign(cpus=cpus, config=config, workers=1)
    parallel = run_campaign(cpus=cpus, config=config, workers=WORKERS)

    # Seed-determinism contract: the pool must change nothing but time.
    assert parallel.hunts == sequential.hunts
    assert parallel.stats.hung == 0

    cores = os.cpu_count() or 1
    speedup = sequential.wall_seconds / max(parallel.wall_seconds, 1e-9)
    lines = [
        f"campaign slice: {', '.join(CPUS)} at tests_per_bug={TESTS_PER_BUG} "
        f"({len(sequential.hunts)} hunts) on {cores} core(s)",
        f"  sequential: wall={sequential.wall_seconds:7.2f}s "
        f"cpu={sequential.cpu_seconds:7.2f}s",
        f"  {WORKERS} workers: wall={parallel.wall_seconds:7.2f}s "
        f"cpu={parallel.cpu_seconds:7.2f}s",
        f"  wall-clock speedup: {speedup:.2f}x",
        f"  throughput: {parallel.stats.throughput_line()}",
    ]
    record("parallel_speedup", "\n".join(lines))

    if cores >= WORKERS:
        assert speedup >= 2.5, (
            f"expected >= 2.5x at {WORKERS} workers on {cores} cores, "
            f"measured {speedup:.2f}x"
        )
