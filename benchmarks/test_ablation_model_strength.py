"""Ablation: checking against the wrong (weaker) memory model.

The checker is parameterized by an ordering policy; this bench measures
what is lost by checking a TSO machine's runs against PSO — every
StoreStore-only violation becomes a legal reordering and vanishes from
the checker's sight, while violations of the axioms PSO retains (value,
coherence, atomicity, load ordering) are still caught.

The quantified moral of the paper's model-interface design: the checker
is exactly as strong as the model you hand it.
"""

import pytest

from repro.core.api import check
from repro.core.policy import PSO, SC, TSO
from repro.generator.config import GeneratorConfig
from repro.generator.generator import generate_program
from repro.sim.faults import (
    AtomicityHoleFault,
    DroppedSpeculativeLoadFault,
    StaleForwardFault,
    StoreBufferReorderFault,
)
from repro.sim.machine import TsoMachine

RUNS = 30


class CrossAddressReorderFault(StoreBufferReorderFault):
    """Reorders only *disjoint-address* store pairs.

    Plain StoreBufferReorderFault also swaps same-address neighbours,
    which every model here forbids (per-location coherence), so it stays
    detectable even under PSO.  This variant produces pure StoreStore
    reordering — exactly the relaxation PSO grants — isolating what the
    weaker model gives up.
    """

    def on_buffer_push(self, cpu, buffer):
        if len(buffer) < 2:
            return
        newest = {a for a, _v in buffer.peek(-1).words}
        older = {a for a, _v in buffer.peek(-2).words}
        if not (newest & older) and self.fire():
            buffer.swap(-1, -2)


#: (mechanism, rate): one StoreStore-only bug, three PSO-visible ones.
CASES = [
    (CrossAddressReorderFault, 0.6),
    (AtomicityHoleFault, 0.5),
    (StaleForwardFault, 0.25),
    (DroppedSpeculativeLoadFault, 0.15),
]


def _detections(mechanism, rate, model) -> int:
    hits = 0
    for seed in range(RUNS):
        config = GeneratorConfig(nprocs=4, ops_per_proc=80, shared_words=6)
        program = generate_program(config, seed=seed)
        machine = TsoMachine(program, seed=seed, faults=[mechanism(rate=rate)])
        if not check(program, machine.run(), model=model).ok:
            hits += 1
    return hits


def test_model_strength_ablation(benchmark, record):
    rows = []
    results = {}
    for mechanism, rate in CASES:
        tso_hits = _detections(mechanism, rate, TSO)
        pso_hits = _detections(mechanism, rate, PSO)
        results[mechanism.__name__] = (tso_hits, pso_hits)
        rows.append(
            f"  {mechanism.__name__:28s} TSO {tso_hits:2d}/{RUNS}   "
            f"PSO {pso_hits:2d}/{RUNS}"
        )
    record(
        "ablation_model_strength",
        "Ablation: TSO machine runs checked against TSO vs the weaker PSO\n"
        + "\n".join(rows),
    )

    # StoreStore reordering is *legal* under PSO: the weak model must
    # lose most (often all) of those detections.
    tso_hits, pso_hits = results["CrossAddressReorderFault"]
    assert tso_hits >= RUNS * 2 // 3
    assert pso_hits <= tso_hits // 2
    # PSO retains the Value axiom: value-corruption bugs stay visible
    # at comparable rates.
    for name in ("StaleForwardFault", "DroppedSpeculativeLoadFault"):
        tso_hits, pso_hits = results[name]
        assert pso_hits >= tso_hits * 2 // 3, name

    # Soundness in the other direction: a weaker-model check never flags
    # something the stronger-model check accepts (SC > TSO > PSO chain is
    # already property-tested; spot-check here on clean runs).
    config = GeneratorConfig(nprocs=4, ops_per_proc=60, shared_words=8)
    for seed in range(5):
        program = generate_program(config, seed=seed)
        execution = TsoMachine(program, seed=seed).run()
        assert check(program, execution, model=PSO).ok

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
