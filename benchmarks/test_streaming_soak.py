"""Streaming-checker soak: bounded live state over a million-op run.

The point of the streaming engine is that checking a run needs memory
proportional to the retirement *window*, not to the run length.  This
soak streams a machine run through ``stream_check_machine`` — the same
pipelined sim/check path campaigns use with ``--pipeline`` — and
asserts the claim directly: ``live_peak`` (the high-water mark of nodes
holding frontier vectors) must sit at the window cap — orders of
magnitude below the node count — while the verdict stays PASS (golden
runs, any window: retirement may lose inference, never invent edges).

The run is checkpointed from the ``on_record`` hook into a throughput
trend line: if retirement leaked, per-interval ops/s would decay as the
live set grew; bounded memory shows up as a flat trend.

Defaults to >= 1M executed ops (~several minutes).  Set
``TSOTOOL_SOAK_OPS_PER_PROC`` to shrink it — CI's smoke job runs the
classic 100k-op size.

A short window sweep at a smaller size shows the other half of the
claim: the peak tracks the window, not the program.
"""

import os
import time

from repro.core.stream import stream_check_machine
from repro.generator.config import GeneratorConfig
from repro.generator.generator import generate_program
from repro.sim.machine import TsoMachine

#: 4 procs x 260k ops: comfortably past the >=1M executed-op soak
#: target even after control flow trims some static slots.
SOAK_OPS_PER_PROC = int(os.environ.get("TSOTOOL_SOAK_OPS_PER_PROC", 260_000))
SOAK_CONFIG = GeneratorConfig(
    nprocs=4, ops_per_proc=SOAK_OPS_PER_PROC, shared_words=16
)
SOAK_WINDOW = 4096
#: Pinned nodes (per-address newest stores, roots, in-flight loads) sit
#: outside the retirement queue, so the peak overshoots the window by a
#: small config-dependent margin — but never by another window's worth.
PIN_MARGIN = 512
#: Ten trend-line intervals across the run.
CHECKPOINTS = 10

SWEEP_CONFIG = GeneratorConfig(nprocs=4, ops_per_proc=6_000, shared_words=16)
SWEEP_WINDOWS = (512, 2048)


def _stream(config, seed, window, on_record=None):
    program = generate_program(config, seed=seed)
    machine = TsoMachine(program, seed=seed)
    t0 = time.perf_counter()
    result, execution = stream_check_machine(
        machine, window=window, on_record=on_record
    )
    wall = time.perf_counter() - t0
    ops = sum(len(p) for p in execution.records)
    return result, ops, wall


def test_streaming_soak(record):
    interval = max(1, SOAK_OPS_PER_PROC * SOAK_CONFIG.nprocs // CHECKPOINTS)
    marks = []  # (checked_records, elapsed_s) at each interval boundary
    state = {"checked": 0, "t0": None}

    def checkpoint(pid, rec_idx):
        state["checked"] += 1
        if state["checked"] % interval == 0:
            marks.append((state["checked"], time.perf_counter() - state["t0"]))

    state["t0"] = time.perf_counter()
    result, ops, wall = _stream(
        SOAK_CONFIG, seed=1, window=SOAK_WINDOW, on_record=checkpoint
    )
    stats = result.stats

    assert result.ok, result.explain()
    # Control flow trims a few static slots; the executed count stays
    # within a few percent of nprocs * ops_per_proc.
    assert ops >= int(SOAK_OPS_PER_PROC * SOAK_CONFIG.nprocs * 0.9)
    assert stats.retired_nodes > 0
    # The memory bound: live state capped by the window, not the run.
    assert stats.live_peak <= SOAK_WINDOW + PIN_MARGIN
    assert stats.live_peak < stats.nodes // 10

    rows = [
        f"  ops={ops}  nodes={stats.nodes}  window={SOAK_WINDOW}",
        f"  retired={stats.retired_nodes}  live_peak={stats.live_peak}"
        f"  (cap {SOAK_WINDOW} + pin margin {PIN_MARGIN})",
        f"  verdict=PASS  wall={wall:.1f}s"
        f"  throughput={ops / wall:,.0f} ops/s",
    ]

    # Throughput trend: a retirement leak would show as decay here.
    rows.append("throughput trend (checked records, per-interval ops/s):")
    prev_ops, prev_t = 0, 0.0
    interval_rates = []
    for checked, elapsed in marks:
        rate = (checked - prev_ops) / (elapsed - prev_t)
        interval_rates.append(rate)
        rows.append(f"  {checked:>9,d} checked  {rate:8,.0f} ops/s")
        prev_ops, prev_t = checked, elapsed
    if len(interval_rates) >= 3:
        # Flat, not decaying: the tail interval holds at least half the
        # opening interval's rate (generous slack for host noise).
        assert interval_rates[-1] >= 0.5 * interval_rates[0], (
            "streaming throughput decayed across the soak: "
            f"{interval_rates[0]:,.0f} -> {interval_rates[-1]:,.0f} ops/s"
        )

    # The peak follows the window, not the program: same program, two
    # windows, two proportional peaks.
    rows.append("window sweep (fixed 24k-op program):")
    for window in SWEEP_WINDOWS:
        result, sweep_ops, sweep_wall = _stream(SWEEP_CONFIG, seed=1,
                                                window=window)
        assert result.ok, (window, result.explain())
        assert result.stats.live_peak <= window + PIN_MARGIN
        rows.append(
            f"  window={window:<5d} ops={sweep_ops}"
            f"  live_peak={result.stats.live_peak}"
            f"  retired={result.stats.retired_nodes}"
            f"  wall={sweep_wall:.1f}s"
        )

    record(
        "streaming_soak",
        "Streaming checker soak (live state bounded by the window)\n"
        + "\n".join(rows),
    )
