"""Streaming-checker soak: bounded live state over a long run.

The point of the streaming engine is that checking a run needs memory
proportional to the retirement *window*, not to the run length.  This
soak streams a >=100k-op machine run through ``stream_check_machine``
and asserts the claim directly: ``live_peak`` (the high-water mark of
nodes holding frontier vectors) must sit at the window cap — orders of
magnitude below the node count — while the verdict stays PASS (golden
runs, any window: retirement may lose inference, never invent edges).

A short window sweep at a smaller size shows the other half of the
claim: the peak tracks the window, not the program.
"""

import time

from repro.core.stream import stream_check_machine
from repro.generator.config import GeneratorConfig
from repro.generator.generator import generate_program
from repro.sim.machine import TsoMachine

#: 4 procs x 26k ops: comfortably past the >=100k executed-op soak
#: target even after control flow trims some static slots.
SOAK_CONFIG = GeneratorConfig(nprocs=4, ops_per_proc=26_000, shared_words=16)
SOAK_WINDOW = 4096
#: Pinned nodes (per-address newest stores, roots, in-flight loads) sit
#: outside the retirement queue, so the peak overshoots the window by a
#: small config-dependent margin — but never by another window's worth.
PIN_MARGIN = 512

SWEEP_CONFIG = GeneratorConfig(nprocs=4, ops_per_proc=6_000, shared_words=16)
SWEEP_WINDOWS = (512, 2048)


def _stream(config, seed, window):
    program = generate_program(config, seed=seed)
    machine = TsoMachine(program, seed=seed)
    t0 = time.perf_counter()
    result, execution = stream_check_machine(machine, window=window)
    wall = time.perf_counter() - t0
    ops = sum(len(p) for p in execution.records)
    return result, ops, wall


def test_streaming_soak(record):
    result, ops, wall = _stream(SOAK_CONFIG, seed=1, window=SOAK_WINDOW)
    stats = result.stats

    assert result.ok, result.explain()
    assert ops >= 100_000
    assert stats.retired_nodes > 0
    # The memory bound: live state capped by the window, not the run.
    assert stats.live_peak <= SOAK_WINDOW + PIN_MARGIN
    assert stats.live_peak < stats.nodes // 10

    rows = [
        f"  ops={ops}  nodes={stats.nodes}  window={SOAK_WINDOW}",
        f"  retired={stats.retired_nodes}  live_peak={stats.live_peak}"
        f"  (cap {SOAK_WINDOW} + pin margin {PIN_MARGIN})",
        f"  verdict=PASS  wall={wall:.1f}s"
        f"  throughput={ops / wall:,.0f} ops/s",
    ]

    # The peak follows the window, not the program: same program, two
    # windows, two proportional peaks.
    rows.append("window sweep (fixed 24k-op program):")
    for window in SWEEP_WINDOWS:
        result, sweep_ops, sweep_wall = _stream(SWEEP_CONFIG, seed=1,
                                                window=window)
        assert result.ok, (window, result.explain())
        assert result.stats.live_peak <= window + PIN_MARGIN
        rows.append(
            f"  window={window:<5d} ops={sweep_ops}"
            f"  live_peak={result.stats.live_peak}"
            f"  retired={result.stats.retired_nodes}"
            f"  wall={sweep_wall:.1f}s"
        )

    record(
        "streaming_soak",
        "Streaming checker soak (live state bounded by the window)\n"
        + "\n".join(rows),
    )
